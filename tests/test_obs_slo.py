"""Tests for repro.obs.slo: objective/policy validation, burn-rate math
on the simulated clock, deterministic multi-window fire/clear sequences,
the registry export (exact family names and labels through the text
exposition parser), and the serving layer's SLO feed."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs.registry import parse_prometheus_text
from repro.obs.slo import (
    SLOEngine,
    SLOObjective,
    SLOPolicy,
    default_slo_policy,
    registry_from_slo_snapshot,
)
from repro.serve import EstimateRequest, EstimationService, ServiceConfig
from repro.serve.controller import BudgetPolicy


def one_objective_policy(**overrides):
    """target 0.9 => budget 0.1: an all-bad window burns at 10x."""
    kwargs = dict(
        objectives=(SLOObjective("avail", target=0.9),),
        short_window_ms=10.0,
        long_window_ms=40.0,
        fire_threshold=2.0,
        min_events=2,
    )
    kwargs.update(overrides)
    return SLOPolicy(**kwargs)


class TestValidation:
    def test_objective_bounds(self):
        with pytest.raises(ObservabilityError):
            SLOObjective("", target=0.9)
        for target in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ObservabilityError):
                SLOObjective("x", target=target)
        assert SLOObjective("x", target=0.99).budget == pytest.approx(0.01)

    def test_policy_bounds(self):
        obj = (SLOObjective("x", target=0.9),)
        with pytest.raises(ObservabilityError):
            SLOPolicy(objectives=())
        with pytest.raises(ObservabilityError):
            SLOPolicy(objectives=obj + obj)  # duplicate names
        with pytest.raises(ObservabilityError):
            SLOPolicy(objectives=obj, short_window_ms=0.0)
        with pytest.raises(ObservabilityError):
            SLOPolicy(objectives=obj, short_window_ms=50.0,
                      long_window_ms=50.0)  # long must exceed short
        with pytest.raises(ObservabilityError):
            SLOPolicy(objectives=obj, fire_threshold=0.0)
        with pytest.raises(ObservabilityError):
            SLOPolicy(objectives=obj, min_events=0)

    def test_clear_threshold_defaults_to_fire(self):
        policy = one_objective_policy()
        assert policy.effective_clear_threshold == policy.fire_threshold
        assert one_objective_policy(
            clear_threshold=0.5
        ).effective_clear_threshold == 0.5

    def test_default_policy_objectives(self):
        policy = default_slo_policy(latency_threshold_ms=3.5)
        names = {o.name for o in policy.objectives}
        assert names == {"admitted_latency", "shed_rate", "degraded",
                         "q_error"}
        engine = SLOEngine(policy)
        assert engine.objective("admitted_latency").threshold_ms == 3.5
        assert engine.objective("nope") is None
        assert engine.has_objective("shed_rate")


class TestBurnRate:
    def test_exact_math(self):
        engine = SLOEngine(one_objective_policy())
        for t, good in [(1.0, False), (2.0, False), (3.0, True), (4.0, True)]:
            engine.record("avail", t, good)
        # 2 bad of 4 in window, budget 0.1 -> (0.5)/0.1 = 5.0
        burn, n = engine.burn_rate("avail", 5.0, 10.0)
        assert burn == pytest.approx(5.0) and n == 4

    def test_min_events_gate(self):
        engine = SLOEngine(one_objective_policy(min_events=4))
        for t in (1.0, 2.0, 3.0):
            engine.record("avail", t, good=False)
        burn, n = engine.burn_rate("avail", 4.0, 10.0)
        assert burn == 0.0 and n == 3  # not enough signal to alert on

    def test_window_is_half_open(self):
        engine = SLOEngine(one_objective_policy(min_events=1))
        engine.record("avail", 0.0, good=False)  # exactly at now - window
        engine.record("avail", 10.0, good=False)  # exactly at now
        _, n = engine.burn_rate("avail", 10.0, 10.0)
        assert n == 1

    def test_unknown_objective(self):
        engine = SLOEngine(one_objective_policy())
        with pytest.raises(ObservabilityError):
            engine.burn_rate("nope", 0.0, 10.0)
        # ...but record() ignores unknown names (wiring sites report
        # unconditionally).
        engine.record("nope", 0.0, good=False)
        assert engine.n_events == 0

    def test_events_trimmed_past_long_window(self):
        engine = SLOEngine(one_objective_policy(min_events=1))
        engine.record("avail", 0.0, good=False)
        engine.record("avail", 100.0, good=True)
        _, n = engine.burn_rate("avail", 100.0, 40.0)
        assert n == 1  # the t=0 event fell off the long horizon


class TestFireClear:
    def test_deterministic_fire_then_clear(self):
        engine = SLOEngine(one_objective_policy())
        transitions = []
        for t in range(6):
            engine.record("avail", float(t), good=False)
            transitions += engine.evaluate(float(t))
        fires = [e for e in transitions if e["state"] == "fire"]
        assert len(fires) == 1
        fire = fires[0]
        assert fire["slo"] == "avail"
        assert fire["short_burn"] >= 2.0 and fire["long_burn"] >= 2.0
        assert engine.active_alerts() == ["avail"]

        # Idle time drains the windows; the short-window check clears it.
        cleared = engine.evaluate(fire["sim_ms"] + 41.0)
        assert [e["state"] for e in cleared] == ["clear"]
        assert engine.active_alerts() == []
        assert [e["state"] for e in engine.alert_log] == ["fire", "clear"]
        # Re-evaluating at a later instant is transition-free.
        assert engine.evaluate(200.0) == []

    def test_no_duplicate_fire_while_active(self):
        engine = SLOEngine(one_objective_policy())
        for t in range(20):
            engine.record("avail", float(t), good=False)
            engine.evaluate(float(t))
        assert sum(
            1 for e in engine.alert_log if e["state"] == "fire"
        ) == 1

    def test_long_window_vetoes_short_blip(self):
        # A short burst of bad events after healthy traffic: the short
        # window spikes past the threshold but the long window — which
        # requires *sustained* badness — stays diluted, so no alert.
        engine = SLOEngine(one_objective_policy(min_events=4))
        for t in range(20):
            engine.record("avail", float(t), good=True)
            engine.evaluate(float(t))
        for t in range(20, 24):
            engine.record("avail", float(t), good=False)
            engine.evaluate(float(t))
        short, _ = engine.burn_rate("avail", 23.0, 10.0)
        long_, _ = engine.burn_rate("avail", 23.0, 40.0)
        assert short >= 2.0 > long_
        engine.evaluate(30.0)
        assert engine.alert_log == []

    def test_same_seed_same_alert_instants(self):
        def run():
            engine = SLOEngine(one_objective_policy())
            for t in range(6):
                engine.record("avail", float(t), good=False)
                engine.evaluate(float(t))
            engine.evaluate(60.0)
            return engine.alert_log

        assert run() == run()


class TestSnapshotAndRegistry:
    def _fired_engine(self):
        engine = SLOEngine(one_objective_policy())
        for t in range(6):
            engine.record("avail", float(t), good=False)
            engine.evaluate(float(t))
        return engine

    def test_snapshot_shape(self):
        engine = self._fired_engine()
        snap = engine.snapshot(5.0)
        json.dumps(snap)
        assert snap["alerts"]["avail"] == {
            "window_events": 6, "n_fired": 1, "n_cleared": 0, "active": 1,
        }
        assert snap["burn_rates"]["avail"]["short"] == pytest.approx(10.0)
        assert snap["n_events"] == 6

    def test_to_registry_exact_families(self):
        reg = self._fired_engine().to_registry(5.0)
        assert {f.name for f in reg.families()} == {
            "slo_burn_rate", "slo_alert_active", "slo_alerts_total",
        }
        by_name = {f.name: f for f in reg.families()}
        assert by_name["slo_burn_rate"].label_names == ("slo", "window")
        assert by_name["slo_alert_active"].label_names == ("slo",)
        assert by_name["slo_alerts_total"].label_names == ("slo", "state")

        parsed = parse_prometheus_text(reg.prometheus_text())
        assert set(parsed) == {
            "repro_slo_burn_rate", "repro_slo_alert_active",
            "repro_slo_alerts_total",
        }
        burn = {
            s["labels"]["window"]: s["value"]
            for s in parsed["repro_slo_burn_rate"]["samples"]
            if s["labels"]["slo"] == "avail"
        }
        assert burn == {"short": pytest.approx(10.0),
                        "long": pytest.approx(10.0)}
        assert parsed["repro_slo_alert_active"]["samples"][0]["value"] == 1.0

    def test_snapshot_bridge_matches_live_export(self):
        engine = self._fired_engine()
        live = engine.to_registry(5.0).snapshot()
        snap = json.loads(json.dumps(engine.snapshot(5.0)))
        bridged = registry_from_slo_snapshot(snap).snapshot()
        assert bridged["slo_burn_rate"] == live["slo_burn_rate"]
        assert bridged["slo_alert_active"] == live["slo_alert_active"]
        assert bridged["slo_alerts_total"] == live["slo_alerts_total"]

    def test_report_renders(self):
        engine = self._fired_engine()
        text = engine.report(5.0)
        assert "avail" in text and "FIRE" in text and "yes" in text
        empty = SLOEngine(one_objective_policy()).report(0.0)
        assert "alert log: (empty)" in empty


class TestServiceSLOFeed:
    def test_q_error_feed_fires_and_clears(self):
        policy = default_slo_policy()
        service = EstimationService(ServiceConfig(slo=policy, flight=None))
        for _ in range(6):
            service.report_q_error(1000.0, 100.0)  # q = 10, all bad
        snap = service.metrics_snapshot()["slo"]
        assert snap["alerts"]["q_error"]["n_fired"] == 1
        assert snap["alerts"]["q_error"]["active"] == 1
        # Advancing the simulated clock past the long window drains the
        # burn windows and deterministically clears the alert.
        service.advance_clock(service.clock_ms + policy.long_window_ms + 1.0)
        snap = service.metrics_snapshot()["slo"]
        assert snap["alerts"]["q_error"]["n_cleared"] == 1
        assert snap["alerts"]["q_error"]["active"] == 0
        log = snap["alert_log"]
        assert [e["state"] for e in log if e["slo"] == "q_error"] == [
            "fire", "clear"
        ]

    def test_completions_feed_objectives(self):
        from repro.graph.datasets import load_dataset
        from repro.query.extract import extract_query

        graph = load_dataset("yeast")
        query = extract_query(graph, 4, rng=8)
        service = EstimationService(ServiceConfig(
            slo=default_slo_policy(),
            policy=BudgetPolicy(min_round_samples=128,
                                max_round_samples=1024),
        ))
        for _ in range(4):
            service.estimate(
                EstimateRequest(graph=graph, query=query, max_samples=1024)
            )
        snap = service.metrics_snapshot()["slo"]
        # Each completion records admitted_latency + degraded (shed_rate
        # needs an admission policy, q_error an external reference).
        assert snap["n_events"] >= 8
        assert set(snap["burn_rates"]) == {
            "admitted_latency", "shed_rate", "degraded", "q_error",
        }
        text = service.registry().prometheus_text()
        assert 'repro_slo_burn_rate{slo="shed_rate",window="short"}' in text
        assert 'repro_slo_alert_active{slo="degraded"}' in text
        parse_prometheus_text(text)  # the whole exposition is well-formed

    def test_slo_disabled_by_default(self):
        service = EstimationService(ServiceConfig(flight=None))
        assert service.slo is None
        assert "slo" not in service.metrics_snapshot()
