"""Tests for exact backtracking enumeration (ground truth + trawling)."""

import itertools

import pytest

from repro.candidate.candidate_graph import build_candidate_graph
from repro.enumeration.backtracking import (
    count_embeddings,
    count_extensions,
    enumerate_embeddings,
)
from repro.graph.builder import from_edge_list
from repro.graph.datasets import load_dataset
from repro.query.extract import extract_query
from repro.query.matching_order import MatchingOrder, quicksi_order
from repro.query.query_graph import QueryGraph, clique_query, path_query


def brute_force_count(graph, query):
    """Reference counter: try every injective vertex assignment."""
    n, k = graph.n_vertices, query.n_vertices
    count = 0
    for mapping in itertools.permutations(range(n), k):
        if query.is_isomorphic_mapping(graph.labels, mapping, graph.has_edge):
            count += 1
    return count


class TestAgainstBruteForce:
    @pytest.mark.parametrize("query_builder", [
        lambda: path_query([0, 0, 0]),
        lambda: clique_query([0, 0, 0]),
        lambda: QueryGraph.from_edges([0, 0, 0, 0], [(0, 1), (1, 2), (2, 3), (0, 3)]),
    ])
    def test_small_graph_counts(self, triangle_graph, query_builder):
        query = query_builder()
        cg = build_candidate_graph(triangle_graph, query)
        order = quicksi_order(query, triangle_graph)
        expected = brute_force_count(triangle_graph, query)
        result = count_embeddings(cg, order)
        assert result.complete
        assert result.count == expected

    def test_labelled_counts(self):
        graph = from_edge_list(
            [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)],
            labels=[0, 1, 0, 1],
        )
        query = path_query([0, 1, 0])
        cg = build_candidate_graph(graph, query)
        order = quicksi_order(query, graph)
        assert count_embeddings(cg, order).count == brute_force_count(graph, query)

    def test_paper_figure2_unique_instance(self, paper_workload):
        """The paper states q has exactly one *instance* (subgraph) in
        Figure 2: {v1, v3, v4, v7, v8}.  Embeddings count mappings, so the
        symmetric u2/u3 assignment doubles it — both views are asserted."""
        graph, query, cg, order = paper_workload
        result = count_embeddings(cg, order)
        assert result.complete
        embeddings = list(enumerate_embeddings(cg, order))
        assert result.count == len(embeddings)
        vertex_sets = {frozenset(e) for e in embeddings}
        # v1, v3, v4, v7, v8 -> ids 0, 2, 3, 6, 7.
        assert vertex_sets == {frozenset({0, 2, 3, 6, 7})}


class TestOrderInvariance:
    def test_count_independent_of_order(self):
        graph = load_dataset("yeast")
        query = extract_query(graph, 5, rng=2, query_type="dense")
        cg = build_candidate_graph(graph, query)
        counts = set()
        from repro.query.matching_order import gcare_order, random_valid_order

        for order in (
            quicksi_order(query, graph),
            gcare_order(query, graph),
            random_valid_order(query, rng=0),
            random_valid_order(query, rng=1),
        ):
            counts.add(count_embeddings(cg, order).count)
        assert len(counts) == 1


class TestBudgets:
    def test_max_count_stops_early(self, paper_workload):
        graph, query, cg, order = paper_workload
        result = count_embeddings(cg, order, max_count=1)
        assert result.count == 1
        assert not result.complete

    def test_max_nodes_stops_early(self):
        graph = load_dataset("yeast")
        query = extract_query(graph, 6, rng=5, query_type="dense")
        cg = build_candidate_graph(graph, query, use_nlf=False, refine_passes=0)
        order = quicksi_order(query, graph)
        result = count_embeddings(cg, order, max_nodes=5)
        assert not result.complete
        assert result.nodes_visited <= 6

    def test_deadline_stops(self):
        graph = load_dataset("eu2005")
        query = extract_query(graph, 16, rng=1, query_type="dense")
        cg = build_candidate_graph(graph, query, use_nlf=False, refine_passes=0)
        order = quicksi_order(query, graph)
        result = count_embeddings(cg, order, deadline_s=0.05)
        # With such a tight deadline on a heavy workload the search is cut.
        assert result.elapsed_ms < 3000


class TestExtensions:
    def test_full_partial_counts_one(self, paper_workload):
        graph, query, cg, order = paper_workload
        instance = next(iter(enumerate_embeddings(cg, order)))
        by_position = [instance[u] for u in order.order]
        result = count_extensions(cg, order, by_position)
        assert result.count == 1 and result.complete

    def test_extension_counts_sum_to_total(self):
        """Σ over depth-d partial instances of their extension counts equals
        the total embedding count — the identity trawling relies on."""
        graph = load_dataset("yeast")
        query = extract_query(graph, 5, rng=4, query_type="dense")
        cg = build_candidate_graph(graph, query)
        order = quicksi_order(query, graph)
        total = count_embeddings(cg, order).count
        # Enumerate all depth-2 partial instances by brute force over
        # candidate pairs, then sum extensions.
        u0, u1 = order.order[0], order.order[1]
        summed = 0
        for v0 in cg.global_candidates[u0]:
            eid = cg.edge_id(u0, u1)
            for v1 in cg.local_candidates(eid, int(v0)):
                if int(v1) == int(v0):
                    continue
                summed += count_extensions(cg, order, [int(v0), int(v1)]).count
        assert summed == total

    def test_duplicate_partial_extends_to_nothing(self, paper_workload):
        _, _, cg, order = paper_workload
        result = count_extensions(cg, order, [0, 0])
        assert result.count == 0 and result.complete

    def test_partial_longer_than_order_rejected(self, paper_workload):
        _, _, cg, order = paper_workload
        with pytest.raises(ValueError):
            count_embeddings(cg, order, partial=[0] * 10)
