"""Tests for the synthetic graph generators and dataset analogs."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.datasets import (
    DATASET_ORDER,
    DATASET_PROFILES,
    dataset_scale_factor,
    dataset_summary,
    load_dataset,
)
from repro.graph.generators import (
    erdos_renyi_graph,
    hub_sparse_graph,
    power_law_cluster_graph,
    preferential_attachment_graph,
    random_labels,
    ring_lattice_graph,
)


class TestLabels:
    def test_uniform_when_exponent_zero(self):
        labels = random_labels(20000, 4, rng=0, zipf_exponent=0.0)
        counts = np.bincount(labels, minlength=4)
        assert counts.min() > 0.8 * counts.max()

    def test_skew_orders_frequencies(self):
        labels = random_labels(20000, 5, rng=0, zipf_exponent=1.2)
        counts = np.bincount(labels, minlength=5)
        assert counts[0] > counts[4] * 2

    def test_range(self):
        labels = random_labels(100, 7, rng=1)
        assert labels.min() >= 0 and labels.max() < 7

    def test_bad_label_count(self):
        with pytest.raises(GraphError):
            random_labels(10, 0)


class TestPreferentialAttachment:
    def test_basic_shape(self):
        g = preferential_attachment_graph(500, 3, rng=0)
        g.validate()
        assert g.n_vertices == 500
        assert 2.0 <= g.avg_degree <= 6.5

    def test_heavy_tail(self):
        g = preferential_attachment_graph(2000, 4, rng=0)
        assert g.max_degree > 5 * g.avg_degree

    def test_hub_bias_thickens_tail(self):
        plain = preferential_attachment_graph(2000, 4, rng=0, hub_bias=0.0)
        biased = preferential_attachment_graph(2000, 4, rng=0, hub_bias=0.9)
        assert biased.max_degree > plain.max_degree

    def test_connected(self):
        assert preferential_attachment_graph(300, 2, rng=1).is_connected()

    def test_deterministic(self):
        a = preferential_attachment_graph(200, 3, rng=42)
        b = preferential_attachment_graph(200, 3, rng=42)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_bad_params(self):
        with pytest.raises(GraphError):
            preferential_attachment_graph(5, 5)
        with pytest.raises(GraphError):
            preferential_attachment_graph(10, 0)
        with pytest.raises(GraphError):
            preferential_attachment_graph(10, 2, hub_bias=1.5)


class TestPowerLawCluster:
    def test_clustering_produces_triangles(self):
        g = power_law_cluster_graph(800, 3, 0.6, rng=0)
        g.validate()
        triangles = 0
        for u, v in g.edges():
            nu = set(int(x) for x in g.neighbors_of(u))
            nv = set(int(x) for x in g.neighbors_of(v))
            triangles += len(nu & nv)
        assert triangles > 100

    def test_bad_triangle_prob(self):
        with pytest.raises(GraphError):
            power_law_cluster_graph(100, 2, 1.5)


class TestErdosRenyi:
    def test_exact_edge_count(self):
        g = erdos_renyi_graph(100, 250, rng=0)
        assert g.n_edges == 250
        g.validate()

    def test_too_many_edges_rejected(self):
        with pytest.raises(GraphError):
            erdos_renyi_graph(4, 10)


class TestRingLattice:
    def test_regular_degrees(self):
        g = ring_lattice_graph(50, 4, rewire_prob=0.0, rng=0)
        assert all(g.degree(v) == 4 for v in range(50))

    def test_rewiring_keeps_edge_count_close(self):
        g = ring_lattice_graph(100, 4, rewire_prob=0.3, rng=0)
        assert abs(g.n_edges - 200) <= 10

    def test_odd_k_rejected(self):
        with pytest.raises(GraphError):
            ring_lattice_graph(10, 3)


class TestHubSparse:
    def test_sparse_with_hubs(self):
        g = hub_sparse_graph(2000, 1200, rng=0)
        g.validate()
        assert 2.0 <= g.avg_degree <= 4.5
        assert g.max_degree > 20 * g.avg_degree


class TestDatasets:
    def test_all_profiles_load(self):
        for name in DATASET_ORDER:
            g = load_dataset(name)
            assert g.n_vertices == DATASET_PROFILES[name].n_vertices
            assert g.n_edges > 0

    def test_cache_returns_same_object(self):
        assert load_dataset("yeast") is load_dataset("YEAST")

    def test_unknown_dataset(self):
        with pytest.raises(GraphError):
            load_dataset("nonexistent")

    def test_degree_profiles_close_to_paper(self):
        # The analogs preserve average degree within a factor ~1.6.
        for name in ("yeast", "wordnet", "orkut", "eu2005"):
            g = load_dataset(name)
            paper_d = DATASET_PROFILES[name].paper_degree
            assert 0.6 * paper_d <= g.avg_degree <= 1.6 * paper_d

    def test_wordnet_is_sparse_and_hubby(self):
        g = load_dataset("wordnet")
        assert g.avg_degree < 4
        assert g.max_degree > 100

    def test_scale_factor_positive(self):
        assert dataset_scale_factor("yeast") > 0.5

    def test_summary_has_all_rows(self):
        text = dataset_summary()
        for name in DATASET_ORDER:
            assert name in text


class TestSeedDeterminism:
    """Same seed => identical graph, across processes and hash seeds.

    Mirrors test_sharding_equivalence.py's property style: determinism is
    what lets the dynamic subsystem replay a (seed, base graph) pair into
    an identical mutation history anywhere.
    """

    _SNIPPET = (
        "from repro.graph.generators import erdos_renyi_graph, random_labels\n"
        "g = erdos_renyi_graph(300, 450, rng=7,"
        " labels=random_labels(300, 3, rng=8))\n"
        "print(g.content_fingerprint())\n"
    )

    def _fingerprint_in_subprocess(self, hash_seed):
        import os
        import subprocess
        import sys
        from pathlib import Path

        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        env["PYTHONHASHSEED"] = hash_seed
        out = subprocess.run(
            [sys.executable, "-c", self._SNIPPET],
            capture_output=True, text=True, env=env, check=True,
        )
        return out.stdout.strip()

    def test_same_seed_identical_across_processes(self):
        a = self._fingerprint_in_subprocess("0")
        b = self._fingerprint_in_subprocess("424242")
        assert a == b
        # ... and identical to this process's build.
        g = erdos_renyi_graph(
            300, 450, rng=7, labels=random_labels(300, 3, rng=8)
        )
        assert g.content_fingerprint() == a

    @pytest.mark.parametrize("seed", [0, 1, 9999])
    def test_same_seed_same_graph_in_process(self, seed):
        a = erdos_renyi_graph(200, 300, rng=seed)
        b = erdos_renyi_graph(200, 300, rng=seed)
        assert np.array_equal(a.offsets, b.offsets)
        assert np.array_equal(a.neighbors, b.neighbors)


class TestSubstreamIndependence:
    def test_spawned_substreams_are_distinct_and_reproducible(self):
        from repro.utils.rng import as_generator, spawn_generators

        children = spawn_generators(as_generator(123), 3)
        draws = [g.integers(0, 1 << 30, size=200) for g in children]
        # Distinct spawned substreams => distinct streams...
        for i in range(3):
            for j in range(i + 1, 3):
                assert not np.array_equal(draws[i], draws[j])
        # ...yet the spawn itself is a pure function of the root seed.
        again = spawn_generators(as_generator(123), 3)
        for g, expected in zip(again, draws):
            assert np.array_equal(g.integers(0, 1 << 30, size=200), expected)

    def test_consuming_one_substream_leaves_siblings_untouched(self):
        from repro.utils.rng import as_generator, spawn_generators

        a1, b1 = spawn_generators(as_generator(7), 2)
        a1.integers(0, 1 << 30, size=1000)  # burn stream a
        burned = b1.integers(0, 1 << 30, size=100)
        _, b2 = spawn_generators(as_generator(7), 2)
        assert np.array_equal(burned, b2.integers(0, 1 << 30, size=100))

    def test_uncorrelated_generator_outputs(self):
        from repro.utils.rng import as_generator, spawn_generators

        a, b = spawn_generators(as_generator(55), 2)
        xa = a.standard_normal(4000)
        xb = b.standard_normal(4000)
        corr = float(np.corrcoef(xa, xb)[0, 1])
        assert abs(corr) < 0.06
