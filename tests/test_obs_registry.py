"""Tests for repro.obs.registry hardening: thread-safety under
concurrent updates, Prometheus label-value escaping round-trips, and
parser-level validation of the ``registry_from_*`` bridge expositions
(exact family names and label sets)."""

import json
import threading

import pytest

from repro.core.config import EngineConfig
from repro.core.engine import GSWORDEngine
from repro.candidate.candidate_graph import build_candidate_graph
from repro.errors import ObservabilityError
from repro.estimators.alley import AlleyEstimator
from repro.graph.datasets import load_dataset
from repro.obs.registry import (
    MetricsRegistry,
    escape_label_value,
    parse_prometheus_text,
    registry_from_run,
    registry_from_service_snapshot,
    unescape_label_value,
)
from repro.obs.slo import default_slo_policy
from repro.query.extract import extract_query
from repro.query.matching_order import quicksi_order
from repro.serve import EstimateRequest, EstimationService, ServiceConfig
from repro.serve.controller import BudgetPolicy


def _hammer(n_threads, fn):
    """Run ``fn(thread_index)`` on ``n_threads`` threads from a barrier."""
    barrier = threading.Barrier(n_threads)
    errors = []

    def body(i):
        barrier.wait()
        try:
            fn(i)
        except Exception as error:  # noqa: BLE001 - surfaced below
            errors.append(error)

    threads = [threading.Thread(target=body, args=(i,))
               for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []


class TestThreadSafety:
    N_THREADS = 8
    N_OPS = 2000

    def test_counter_increments_are_not_lost(self):
        reg = MetricsRegistry()
        counter = reg.counter("ops_total", labels=("kind",))

        def work(i):
            # Everyone hammers one shared child plus a private one.
            for _ in range(self.N_OPS):
                counter.labels(kind="shared").inc()
                counter.labels(kind=f"t{i}").inc()

        _hammer(self.N_THREADS, work)
        series = {e["labels"]["kind"]: e["value"]
                  for e in reg.snapshot()["ops_total"]["series"]}
        assert series["shared"] == self.N_THREADS * self.N_OPS
        for i in range(self.N_THREADS):
            assert series[f"t{i}"] == self.N_OPS

    def test_histogram_aggregates_stay_exact(self):
        reg = MetricsRegistry()
        hist = reg.histogram("latency", max_samples=256)

        def work(i):
            for _ in range(self.N_OPS):
                hist.observe(1.0)

        _hammer(self.N_THREADS, work)
        snap = reg.snapshot()["latency"]["series"][0]
        assert snap["count"] == self.N_THREADS * self.N_OPS
        assert snap["mean"] == 1.0 and snap["max"] == 1.0

    def test_concurrent_child_creation_yields_one_child(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("depth", labels=("queue",))

        def work(i):
            gauge.labels(queue="main").set(float(i))

        _hammer(self.N_THREADS, work)
        family = reg.families()[0]
        assert len(list(family.children())) == 1

    def test_concurrent_registration_returns_one_family(self):
        reg = MetricsRegistry()
        seen = []
        lock = threading.Lock()

        def work(i):
            family = reg.counter("shared_total", labels=("k",))
            with lock:
                seen.append(family)

        _hammer(self.N_THREADS, work)
        assert len(reg.families()) == 1
        assert all(f is seen[0] for f in seen)


NASTY_VALUES = [
    'back\\slash',
    'say "hi"',
    'line\nbreak',
    'all\\three: "q"\nnewline',
    "",
    "plain",
]


class TestLabelEscaping:
    @pytest.mark.parametrize("value", NASTY_VALUES)
    def test_escape_round_trip(self, value):
        assert unescape_label_value(escape_label_value(value)) == value

    def test_escaped_text_is_single_line(self):
        assert "\n" not in escape_label_value("a\nb")

    def test_unescape_rejects_invalid_sequence(self):
        with pytest.raises(ObservabilityError):
            unescape_label_value("\\t")

    def test_exposition_round_trip_through_parser(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("paths", "Path gauge", labels=("path",))
        for i, value in enumerate(NASTY_VALUES):
            gauge.labels(path=value).set(float(i))
        text = reg.prometheus_text()
        # A raw newline inside a label value would split a sample line in
        # two and corrupt the exposition.
        samples = [ln for ln in text.splitlines() if not ln.startswith("#")]
        assert len(samples) == len(NASTY_VALUES)
        parsed = parse_prometheus_text(text)
        recovered = {s["labels"]["path"]: s["value"]
                     for s in parsed["repro_paths"]["samples"]}
        assert recovered == {v: float(i)
                             for i, v in enumerate(NASTY_VALUES)}


class TestExpositionParser:
    def test_rejects_undeclared_sample(self):
        with pytest.raises(ObservabilityError):
            parse_prometheus_text("mystery_total 1\n")

    def test_rejects_bad_type(self):
        with pytest.raises(ObservabilityError):
            parse_prometheus_text("# TYPE x widget\nx 1\n")

    def test_rejects_unterminated_labels(self):
        text = '# TYPE x gauge\nx{a="b" 1\n'
        with pytest.raises(ObservabilityError):
            parse_prometheus_text(text)

    def test_rejects_bad_value(self):
        with pytest.raises(ObservabilityError):
            parse_prometheus_text("# TYPE x gauge\nx notanumber\n")

    def test_rejects_dangling_escape(self):
        text = '# TYPE x gauge\nx{a="b\\"} 1\n'
        with pytest.raises(ObservabilityError):
            parse_prometheus_text(text)

    def test_summary_suffixes_attach_to_family(self):
        text = (
            "# TYPE lat summary\n"
            'lat{quantile="0.5"} 2\n'
            "lat_sum 10\nlat_count 5\n"
        )
        parsed = parse_prometheus_text(text)
        names = {s["name"] for s in parsed["lat"]["samples"]}
        assert names == {"lat", "lat_sum", "lat_count"}


@pytest.fixture(scope="module")
def served_registry():
    """A registry bridged from a real (small) service run with SLOs on."""
    graph = load_dataset("yeast")
    query = extract_query(graph, 4, rng=8)
    service = EstimationService(ServiceConfig(
        slo=default_slo_policy(),
        policy=BudgetPolicy(min_round_samples=128, max_round_samples=1024),
    ))
    for _ in range(4):
        service.estimate(
            EstimateRequest(graph=graph, query=query, max_samples=1024)
        )
    return service.registry()


class TestServiceBridgeNames:
    EXPECTED_LABELS = {
        "requests_total": ("state",),
        "rounds_by_backend_total": ("backend",),
        "rounds_by_shard_count_total": ("shards",),
        "samples_total": ("kind",),
        "latency_ms": ("stat",),
        "queue_wait_ms": ("stat",),
        "resilience_events_total": ("event",),
        "plan_cache": ("stat",),
        "slo_burn_rate": ("slo", "window"),
        "slo_alert_active": ("slo",),
        "slo_alerts_total": ("slo", "state"),
    }

    def test_exact_family_names_and_labels(self, served_registry):
        by_name = {f.name: f for f in served_registry.families()}
        expected_names = {
            "requests_total", "batches_total", "rounds_total",
            "rounds_by_backend_total", "rounds_by_shard_count_total",
            "samples_total", "device_busy_ms", "samples_per_second",
            "mean_batch_size", "max_queue_depth", "service_clock_ms",
            "latency_ms", "queue_wait_ms", "resilience_events_total",
            "queue_depth", "plan_cache", "plan_cache_events_total",
            "slo_burn_rate", "slo_alert_active", "slo_alerts_total",
        }
        assert expected_names <= set(by_name)
        for name, labels in self.EXPECTED_LABELS.items():
            assert by_name[name].label_names == labels, name

    def test_exposition_parses_and_is_fully_declared(self, served_registry):
        text = served_registry.prometheus_text()
        parsed = parse_prometheus_text(text)  # undeclared samples raise
        assert all(name.startswith("repro_") for name in parsed)
        assert all(entry["type"] is not None for entry in parsed.values())
        states = {s["labels"]["state"]: s["value"]
                  for s in parsed["repro_requests_total"]["samples"]}
        assert states["submitted"] == 4.0 and states["completed"] == 4.0
        burn_labels = {
            (s["labels"]["slo"], s["labels"]["window"])
            for s in parsed["repro_slo_burn_rate"]["samples"]
        }
        assert ("admitted_latency", "short") in burn_labels
        assert ("q_error", "long") in burn_labels
        # Histogram-style families expose summary quantiles + _sum/_count.
        latency_names = {s["name"]
                         for s in parsed["repro_latency_ms"]["samples"]}
        assert "repro_latency_ms" in latency_names
        # The snapshot form is JSON-safe end to end.
        json.dumps(served_registry.snapshot())


class TestRunBridgeNames:
    def test_exact_names_and_exposition(self):
        graph = load_dataset("yeast")
        query = extract_query(graph, 4, rng=8)
        cg = build_candidate_graph(graph, query)
        order = quicksi_order(query, graph)
        result = GSWORDEngine(AlleyEstimator(), EngineConfig()).run(
            cg, order, 256, rng=5
        )
        reg = registry_from_run(result)
        names = {f.name for f in reg.families()}
        assert {"estimate", "samples_total", "simulated_ms",
                "kernel_cycles", "kernel_stall"} <= names
        by_name = {f.name: f for f in reg.families()}
        assert by_name["kernel_cycles"].label_names == ("category",)
        assert by_name["kernel_stall"].label_names == ("metric",)
        assert by_name["samples_total"].label_names == ("kind",)
        parsed = parse_prometheus_text(reg.prometheus_text())
        assert parsed["repro_estimate"]["samples"][0]["value"] == float(
            result.estimate
        )
        kinds = {s["labels"]["kind"]
                 for s in parsed["repro_samples_total"]["samples"]}
        assert kinds == {"drawn", "valid"}

    def test_snapshot_bridge_declares_everything(self):
        # The hand-written minimal snapshot from test_obs plus the newer
        # sections (hedging, shed, cancellations) all parse cleanly.
        snap = {
            "n_submitted": 2, "n_completed": 2, "n_degraded": 0,
            "n_failed": 0, "n_batches": 1, "n_rounds": 2,
            "total_samples": 256, "total_valid": 200,
            "busy_ms": 1.0, "samples_per_second": 1000.0,
            "mean_batch_size": 2.0, "max_queue_depth": 2, "clock_ms": 3.0,
            "admission": {
                "shed_by_reason": {"queue_full": 3},
                "n_cancelled": 1,
                "retry_after_ms": {"count": 3, "mean": 0.5, "p50": 0.5,
                                   "p95": 0.9, "p99": 0.9, "max": 1.0},
            },
            "hedging": {"n_hedges": 2, "n_hedge_wins": 1,
                        "hedge_wasted_ms": 0.25},
        }
        reg = registry_from_service_snapshot(snap)
        names = {f.name for f in reg.families()}
        assert {"admission_shed_total", "requests_cancelled_total",
                "retry_after_ms", "hedge_events_total",
                "hedge_wasted_ms"} <= names
        parsed = parse_prometheus_text(reg.prometheus_text())
        shed = parsed["repro_admission_shed_total"]["samples"]
        assert shed[0]["labels"] == {"reason": "queue_full"}
        assert shed[0]["value"] == 3.0
        events = {s["labels"]["event"]: s["value"]
                  for s in parsed["repro_hedge_events_total"]["samples"]}
        assert events == {"fired": 2.0, "won": 1.0}
