"""Bit-identity of delta plan maintenance against full rebuilds.

The subsystem's load-bearing invariant: at every version of a seeded
update stream, :meth:`DeltaPlanMaintainer.refresh` must produce a
candidate graph *bit-identical* (every CSR array equal, dtype included)
to ``build_candidate_graph`` run from scratch on the same snapshot — the
delta path is an optimisation, never an approximation.  Estimates on the
refreshed plan are then trivially equal for the same seeds, which the
last tests confirm end to end through the engine and the serving stack.
"""

import numpy as np
import pytest

from repro.candidate.candidate_graph import build_candidate_graph
from repro.core.config import EngineConfig
from repro.core.engine import GSWORDEngine
from repro.dyn.delta import DeltaPlanMaintainer, candidate_graphs_equal
from repro.dyn.mutable import MutableGraph
from repro.dyn.stream import UniformChurnStream
from repro.errors import CandidateGraphError
from repro.estimators.alley import AlleyEstimator
from repro.graph.generators import erdos_renyi_graph, random_labels
from repro.query.extract import extract_query
from repro.query.matching_order import quicksi_order
from repro.serve.request import EstimateRequest
from repro.serve.service import EstimationService


def make_base(n=250, m=350, n_labels=3, seed=0):
    return erdos_renyi_graph(
        n, m, rng=seed, labels=random_labels(n, n_labels, rng=seed + 1),
        name="dyn-eq",
    )


def assert_bit_identical(cg_a, cg_b, context=""):
    __tracebackhide__ = True
    if not candidate_graphs_equal(cg_a, cg_b):
        pytest.fail(f"candidate graphs diverged {context}")


class TestLongStream:
    def test_200_batch_stream_bit_identical_every_version(self):
        """The acceptance criterion: 200 seeded batches, checked at every
        single version against a from-scratch build."""
        base = make_base()
        graph = MutableGraph(base)
        maintainer = DeltaPlanMaintainer(
            graph, extract_query(base, 4, rng=5), validate_after_refresh=False
        )
        stream = UniformChurnStream(4, 4, rng=123)
        for _ in range(200):
            graph.apply(stream.next_batch(graph))
            stats = maintainer.refresh()
            full = build_candidate_graph(graph.snapshot(), maintainer.query)
            assert_bit_identical(
                maintainer.cg, full, f"at version {graph.version}"
            )
            assert 0.0 <= stats.touched_fraction <= 1.0
        assert graph.version == 200
        assert maintainer.version == 200
        maintainer.cg.validate()

    def test_compaction_does_not_perturb_maintenance(self):
        base = make_base(seed=2)
        plain = MutableGraph(base)
        compacting = MutableGraph(base, compact_every=5)
        query = extract_query(base, 4, rng=5)
        m_plain = DeltaPlanMaintainer(plain, query)
        m_comp = DeltaPlanMaintainer(compacting, query)
        stream_a = UniformChurnStream(5, 5, rng=77)
        stream_b = UniformChurnStream(5, 5, rng=77)
        for _ in range(20):
            plain.apply(stream_a.next_batch(plain))
            compacting.apply(stream_b.next_batch(compacting))
            m_plain.refresh()
            m_comp.refresh()
            assert_bit_identical(m_plain.cg, m_comp.cg)


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(use_nlf=False, refine_passes=0),
        dict(use_nlf=False, refine_passes=1),
        dict(use_nlf=True, refine_passes=3),
        dict(use_nlf=True, refine_passes=2, use_degree=False),
        dict(use_nlf=False, refine_passes=2, use_label=False),
    ],
)
class TestFilterVariants:
    def test_variant_bit_identical(self, kwargs):
        base = make_base(seed=4)
        graph = MutableGraph(base)
        query = extract_query(base, 4, rng=9)
        maintainer = DeltaPlanMaintainer(graph, query, **kwargs)
        stream = UniformChurnStream(5, 5, rng=31)
        for _ in range(25):
            graph.apply(stream.next_batch(graph))
            maintainer.refresh()
        full = build_candidate_graph(graph.snapshot(), query, **kwargs)
        assert_bit_identical(maintainer.cg, full)


class TestMaintainerMechanics:
    def test_noop_refresh_is_free(self):
        base = make_base()
        graph = MutableGraph(base)
        maintainer = DeltaPlanMaintainer(graph, extract_query(base, 4, rng=5))
        stats = maintainer.refresh()
        assert stats.is_noop and stats.rows_touched == 0

    def test_multi_version_catchup(self):
        """One refresh may span several applied batches."""
        base = make_base(seed=6)
        graph = MutableGraph(base)
        query = extract_query(base, 4, rng=5)
        maintainer = DeltaPlanMaintainer(graph, query)
        stream = UniformChurnStream(4, 4, rng=55)
        for _ in range(7):
            graph.apply(stream.next_batch(graph))
        stats = maintainer.refresh()
        assert stats.from_version == 0 and stats.to_version == 7
        assert_bit_identical(
            maintainer.cg, build_candidate_graph(graph.snapshot(), query)
        )

    def test_rebuild_resyncs(self):
        base = make_base()
        graph = MutableGraph(base)
        maintainer = DeltaPlanMaintainer(graph, extract_query(base, 4, rng=5))
        stream = UniformChurnStream(4, 4, rng=13)
        for _ in range(3):
            graph.apply(stream.next_batch(graph))
        maintainer.rebuild()
        assert maintainer.version == graph.version
        maintainer.assert_synced()

    def test_check_against_rebuild(self):
        base = make_base()
        graph = MutableGraph(base)
        maintainer = DeltaPlanMaintainer(graph, extract_query(base, 4, rng=5))
        graph.apply(UniformChurnStream(4, 4, rng=3).next_batch(graph))
        maintainer.refresh()
        maintainer.check_against_rebuild()

    def test_assert_synced_detects_lag(self):
        base = make_base()
        graph = MutableGraph(base)
        maintainer = DeltaPlanMaintainer(graph, extract_query(base, 4, rng=5))
        graph.apply(UniformChurnStream(4, 4, rng=3).next_batch(graph))
        with pytest.raises(CandidateGraphError):
            maintainer.assert_synced()


class TestEstimateEquality:
    def test_engine_estimates_match_for_same_seed(self):
        """Bit-identical plans give bit-identical estimates."""
        base = make_base(seed=8)
        graph = MutableGraph(base)
        query = extract_query(base, 4, rng=5)
        maintainer = DeltaPlanMaintainer(graph, query)
        stream = UniformChurnStream(5, 5, rng=99)
        for _ in range(10):
            graph.apply(stream.next_batch(graph))
            maintainer.refresh()
        snap = graph.snapshot()
        full = build_candidate_graph(snap, query)
        order = quicksi_order(query, snap)
        engine = GSWORDEngine(AlleyEstimator(), EngineConfig.gsword())
        a = engine.run(maintainer.cg, order, 512, rng=4242)
        b = engine.run(full, order, 512, rng=4242)
        assert a.estimate == b.estimate
        assert a.simulated_ms() == b.simulated_ms()

    def test_served_estimate_matches_static_service(self):
        """An estimate through the mutated graph's maintained plan equals a
        fresh static service's estimate on the rebuilt snapshot, given the
        same request id (the sampling seed)."""
        from repro.dyn.serving import DynamicEstimationSession

        base = make_base(seed=10)
        query = extract_query(base, 4, rng=5)
        with DynamicEstimationSession(MutableGraph(base)) as session:
            session.register_query(query)
            stream = UniformChurnStream(5, 5, rng=17)
            for _ in range(6):
                session.mutate(stream.next_batch(session.graph))
            dynamic = session.estimate(
                query, max_samples=1024, request_id="eq-seed"
            )
            snap = session.plan_snapshot(query)
            graph_id = session.graph.graph_id
        service = EstimationService()
        try:
            static = service.estimate(
                EstimateRequest(
                    graph=snap, query=query, max_samples=1024,
                    graph_id=graph_id, request_id="eq-seed",
                )
            )
        finally:
            service.close()
        assert dynamic.estimate == static.estimate
        assert dynamic.n_samples == static.n_samples
        assert dynamic.graph_version == session.graph.version
