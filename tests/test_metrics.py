"""Tests for q-error and summary statistics."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.qerror import is_underestimate, q_error, signed_q_error
from repro.metrics.stats import geometric_mean, speedup, summarize


class TestQError:
    def test_exact(self):
        assert q_error(100, 100) == 1.0

    def test_symmetric(self):
        assert q_error(100, 25) == q_error(100, 400) == 4.0

    def test_zero_clamping(self):
        # The paper's definition clamps both sides at 1.
        assert q_error(0, 0) == 1.0
        assert q_error(1000, 0) == 1000.0
        assert q_error(0, 1000) == 1000.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            q_error(-1, 5)

    def test_underestimate_detection(self):
        assert is_underestimate(100, 10)
        assert not is_underestimate(10, 100)
        assert not is_underestimate(5, 5)

    def test_signed(self):
        assert signed_q_error(100, 10) == -10.0
        assert signed_q_error(10, 100) == 10.0
        assert signed_q_error(7, 7) == 1.0

    @given(
        st.floats(min_value=0, max_value=1e12),
        st.floats(min_value=0, max_value=1e12),
    )
    @settings(max_examples=100, deadline=None)
    def test_properties(self, c, c_hat):
        qe = q_error(c, c_hat)
        assert qe >= 1.0
        # Symmetry in the arguments.
        assert qe == pytest.approx(q_error(c_hat, c))
        # Scale consistency above the clamp.
        if c >= 1 and c_hat >= 1:
            assert qe == pytest.approx(max(c / c_hat, c_hat / c))


class TestStats:
    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([5.0]) == pytest.approx(5.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_speedup(self):
        assert speedup(10.0, 2.0) == 5.0
        with pytest.raises(ValueError):
            speedup(0.0, 1.0)

    def test_summarize(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.mean == pytest.approx(2.0)
        assert s.std == pytest.approx(math.sqrt(2 / 3))
        assert (s.minimum, s.maximum, s.n) == (1.0, 3.0, 3)
        with pytest.raises(ValueError):
            summarize([])

    def test_format_pm(self):
        s = summarize([10.0, 20.0])
        assert s.format_pm() == "15±5"

    @given(st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=1, max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_geometric_mean_bounds(self, values):
        gm = geometric_mean(values)
        assert min(values) <= gm * (1 + 1e-9)
        assert gm <= max(values) * (1 + 1e-9)
