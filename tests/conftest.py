"""Shared fixtures: small, hand-checkable graphs and the paper's Figure 2
example, plus medium synthetic workloads for integration tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.candidate.candidate_graph import build_candidate_graph
from repro.graph.builder import from_edge_list
from repro.query.matching_order import MatchingOrder, quicksi_order
from repro.query.query_graph import QueryGraph


@pytest.fixture
def triangle_graph():
    """Two triangles sharing an edge; all labels 0."""
    return from_edge_list(
        [(0, 1), (1, 2), (0, 2), (1, 3), (2, 3)],
        labels=[0, 0, 0, 0],
        name="tri2",
    )


@pytest.fixture
def paper_graph():
    """The data graph of the paper's Figure 2.

    Vertices: v1..v9 -> ids 0..8.  Labels: A=0, B=1, C=2, D=3.
    v1,v2 have label A; v3..v6 label B; v7 label C (connected to v3, v4);
    v8 label D; v9 label C.  Edges follow the figure: v1-{v3,v4,v5},
    v2-{v5,v6}, v3-v4, v3-v7, v4-v7, v7-v8, v3-v9, v8-v4 ... (a faithful
    small variant: the exact figure is partially occluded in text, so this
    fixture fixes ONE concrete graph with the property the paper states:
    exactly one instance (v1, v3, v4, v7, v8) of the query).
    """
    labels = [0, 0, 1, 1, 1, 1, 2, 3, 2]
    edges = [
        (0, 2), (0, 3), (0, 4),      # v1-v3, v1-v4, v1-v5
        (1, 4), (1, 5),              # v2-v5, v2-v6
        (2, 3),                      # v3-v4
        (2, 6), (3, 6),              # v3-v7, v4-v7
        (6, 7),                      # v7-v8
        (2, 8),                      # v3-v9
        (3, 7),                      # v4-v8
    ]
    return from_edge_list(edges, labels=labels, name="fig2")


@pytest.fixture
def paper_query():
    """The query graph of Figure 2: u1(A)-u2(B), u2-u3(B), u2-u4(C),
    u3-u4, u4-u5(D) — 5 vertices."""
    labels = [0, 1, 1, 2, 3]
    edges = [(0, 1), (1, 2), (1, 3), (2, 3), (3, 4)]
    return QueryGraph.from_edges(labels, edges, name="fig2-q")


@pytest.fixture
def paper_workload(paper_graph, paper_query):
    cg = build_candidate_graph(paper_graph, paper_query)
    order = quicksi_order(paper_query, paper_graph)
    return paper_graph, paper_query, cg, order


@pytest.fixture
def triangle_query():
    return QueryGraph.from_edges([0, 0, 0], [(0, 1), (1, 2), (0, 2)], name="tri")


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


def make_order(query: QueryGraph, order) -> MatchingOrder:
    """Helper used across test modules."""
    return MatchingOrder.from_permutation(query, order)
