"""Tests for version-aware serving over a mutating graph."""

import json
import threading

import pytest

from repro.dyn.mutable import EdgeBatch, MutableGraph
from repro.dyn.serving import DynamicEstimationSession
from repro.dyn.stream import UniformChurnStream
from repro.errors import ServiceError
from repro.graph.generators import erdos_renyi_graph, random_labels
from repro.obs import registry_from_service_snapshot
from repro.query.extract import extract_query
from repro.serve.service import ServiceConfig


def make_graph(seed=0, name="dynserve"):
    base = erdos_renyi_graph(
        200, 300, rng=seed, labels=random_labels(200, 2, rng=seed + 1),
        name=name,
    )
    return MutableGraph(base)


def make_query(graph, rng=5):
    return extract_query(graph.snapshot(), 4, rng=rng)


def churn(graph):
    return UniformChurnStream(5, 5, rng=graph.version + 101).next_batch(graph)


class TestSessionBasics:
    def test_register_and_estimate(self):
        graph = make_graph()
        with DynamicEstimationSession(graph) as session:
            query = make_query(graph)
            session.register_query(query)
            first = session.estimate(query, max_samples=512)
            assert first.graph_version == 0
            # register_query installed the plan, so even the first request
            # hits the cache — admission never rebuilds the candidate graph.
            assert first.cache_hit
            assert first.build_ms == 0.0
            assert session.staleness(query) == 0

    def test_estimate_auto_registers(self):
        graph = make_graph()
        with DynamicEstimationSession(graph) as session:
            response = session.estimate(make_query(graph), max_samples=512)
            assert response.graph_version == 0

    def test_register_idempotent(self):
        graph = make_graph()
        with DynamicEstimationSession(graph) as session:
            query = make_query(graph)
            m1 = session.register_query(query)
            m2 = session.register_query(query)
            assert m1 is m2

    def test_refresh_every_validated(self):
        with pytest.raises(ServiceError):
            DynamicEstimationSession(make_graph(), refresh_every=0)

    def test_cacheless_service_rejected(self):
        with pytest.raises(ServiceError):
            DynamicEstimationSession(
                make_graph(), config=ServiceConfig(cache_bytes=0)
            )

    def test_unregistered_query_staleness_raises(self):
        graph = make_graph()
        with DynamicEstimationSession(graph) as session:
            with pytest.raises(ServiceError):
                session.staleness(make_query(graph))


class TestMutationAndInvalidation:
    def test_mutate_refreshes_and_invalidates(self):
        graph = make_graph()
        with DynamicEstimationSession(graph) as session:
            query = make_query(graph)
            session.register_query(query)
            session.estimate(query, max_samples=512)
            session.mutate(churn(graph))
            assert graph.version == 1
            assert session.staleness(query) == 0  # refresh_every=1
            response = session.estimate(query, max_samples=512)
            assert response.graph_version == 1
            snap = session.service.metrics_snapshot()
            # register + one refresh = two installs; the v0 entry was
            # evicted as a stale version, not for capacity.
            assert snap["plans"]["n_refreshes"] == 2
            assert snap["plans"]["n_invalidations"] == 1
            assert snap["plans"]["n_invalidated_entries"] == 1
            assert snap["cache"]["evictions_by_reason"]["version"] == 1
            assert snap["cache"]["evictions_by_reason"]["capacity"] == 0

    def test_empty_batch_still_versions(self):
        graph = make_graph()
        with DynamicEstimationSession(graph) as session:
            query = make_query(graph)
            session.register_query(query)
            session.mutate(EdgeBatch.make(n_vertices=graph.n_vertices))
            response = session.estimate(query, max_samples=512)
            assert response.graph_version == 1

    def test_deferred_refresh_marks_staleness(self):
        graph = make_graph()
        with DynamicEstimationSession(graph, refresh_every=3) as session:
            query = make_query(graph)
            session.register_query(query)
            session.mutate(churn(graph))
            session.mutate(churn(graph))
            assert session.staleness(query) == 2
            stale = session.estimate(query, max_samples=512)
            # Served against the stale-but-resident v0 plan, and says so.
            assert stale.graph_version == 0
            assert stale.cache_hit
            assert graph.version - stale.graph_version == 2
            session.mutate(churn(graph))  # third mutation triggers refresh
            assert session.staleness(query) == 0
            fresh = session.estimate(query, max_samples=512)
            assert fresh.graph_version == 3

    def test_plan_snapshot_tracks_plan_not_graph(self):
        graph = make_graph()
        with DynamicEstimationSession(graph, refresh_every=5) as session:
            query = make_query(graph)
            session.register_query(query)
            before = session.plan_snapshot(query)
            session.mutate(churn(graph))
            assert session.plan_snapshot(query) is before
            session.refresh_plans()
            assert session.plan_snapshot(query) is not before


class TestConcurrentMutation:
    def test_responses_always_name_their_version(self):
        """The staleness contract under concurrent mutation: every response
        carries the graph_version its plan was built on — never None, never
        newer than the graph itself."""
        graph = make_graph()
        session = DynamicEstimationSession(graph, refresh_every=2)
        query = make_query(graph)
        session.register_query(query)
        stop = threading.Event()
        errors = []

        def mutator():
            try:
                while not stop.is_set():
                    session.mutate(churn(graph))
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        thread = threading.Thread(target=mutator)
        thread.start()
        try:
            for _ in range(25):
                response = session.estimate(query, max_samples=256)
                version_after = graph.version
                assert response.graph_version is not None
                assert 0 <= response.graph_version <= version_after
        finally:
            stop.set()
            thread.join()
            session.close()
        assert not errors


class TestObservability:
    def test_registry_bridges_plan_lifecycle(self):
        graph = make_graph()
        with DynamicEstimationSession(graph) as session:
            query = make_query(graph)
            session.register_query(query)
            session.mutate(churn(graph))
            session.estimate(query, max_samples=512)
            snap = session.service.metrics_snapshot()
        out = registry_from_service_snapshot(snap).snapshot()
        events = {
            e["labels"]["event"]: e["value"]
            for e in out["plan_lifecycle_total"]["series"]
        }
        assert events["refresh"] == 2.0
        assert events["invalidation"] == 1.0
        assert events["invalidated_entry"] == 1.0
        reasons = {
            e["labels"]["reason"]: e["value"]
            for e in out["plan_cache_evictions_total"]["series"]
        }
        assert reasons["version"] == 1.0
        assert reasons["capacity"] == 0.0
        json.dumps(out)  # the bridged registry stays serialisable

    def test_trace_instants_recorded(self, tmp_path):
        graph = make_graph()
        config = ServiceConfig(trace=True)
        with DynamicEstimationSession(graph, config=config) as session:
            query = make_query(graph)
            session.register_query(query)
            session.mutate(churn(graph))
            session.estimate(query, max_samples=512)
            path = tmp_path / "dyn_trace.json"
            session.service.recorder.write(str(path))
        payload = json.loads(path.read_text())
        names = {event.get("name") for event in payload["traceEvents"]}
        assert "plan.refresh" in names
        assert "plan.invalidate" in names
