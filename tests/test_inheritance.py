"""Tests for sample inheritance (Alg. 2) and the recursive estimator
(Theorem 1), including the worked example from the module docstring."""

import numpy as np
import pytest

from repro.candidate.candidate_graph import build_candidate_graph
from repro.core.config import EngineConfig
from repro.core.engine import GSWORDEngine
from repro.core.inheritance import apply_inheritance
from repro.enumeration.backtracking import count_embeddings
from repro.estimators.base import SampleState
from repro.estimators.wanderjoin import WanderJoinEstimator
from repro.graph.builder import from_edge_list
from repro.graph.datasets import load_dataset
from repro.gpu.costmodel import GPUSpec
from repro.gpu.profiler import WarpProfile
from repro.query.extract import extract_query
from repro.query.matching_order import quicksi_order
from repro.query.query_graph import QueryGraph


def _state(instance, prob, depth):
    s = SampleState.fresh(len(instance))
    s.instance = list(instance)
    s.prob = prob
    s.depth = depth
    return s


class TestApplyInheritance:
    def test_no_valid_lane_breaks_all(self):
        lanes = [_state([1, -1], 0.5, 1), _state([2, -1], 0.5, 1)]
        running, inherited = apply_inheritance(
            lanes, valid=[False, False], active=[True, True]
        )
        assert running == [False, False] and inherited == 0

    def test_all_valid_no_inheritance(self):
        lanes = [_state([1, -1], 0.5, 1), _state([2, -1], 0.5, 1)]
        running, inherited = apply_inheritance(
            lanes, valid=[True, True], active=[True, True]
        )
        assert running == [True, True] and inherited == 0
        assert lanes[0].prob == 0.5  # untouched

    def test_single_parent_shares_state(self):
        parent = _state([7, 8], 0.25, 2)
        dead = _state([9, -1], 0.5, 1)
        lanes = [parent, dead]
        running, inherited = apply_inheritance(
            lanes, valid=[True, False], active=[True, True]
        )
        assert running == [True, True] and inherited == 1
        # Parent prob multiplied by (idle + 1) = 2; copy shares everything.
        assert lanes[0].prob == pytest.approx(0.5)
        assert lanes[1].instance == [7, 8] and lanes[1].depth == 2
        assert lanes[1].prob == pytest.approx(0.5)
        # The copy is independent state, not an alias.
        lanes[1].instance[0] = 99
        assert lanes[0].instance[0] == 7

    def test_inactive_lanes_never_inherit(self):
        parent = _state([7, -1], 0.5, 1)
        inactive = _state([-1, -1], 1.0, 0)
        lanes = [parent, inactive]
        running, inherited = apply_inheritance(
            lanes, valid=[True, False], active=[True, False]
        )
        assert running == [True, False] and inherited == 0
        assert lanes[0].prob == 0.5  # no idle participants -> no adjustment

    def test_multiple_idle_split_weight(self):
        parent = _state([7, -1], 0.5, 1)
        lanes = [parent, _state([1, -1], 0.1, 1), _state([2, -1], 0.1, 1)]
        running, inherited = apply_inheritance(
            lanes, valid=[True, False, False], active=[True, True, True]
        )
        assert inherited == 2
        assert lanes[0].prob == pytest.approx(1.5)  # 0.5 * 3
        assert lanes[1].prob == lanes[2].prob == pytest.approx(1.5)

    def test_charges_warp_primitives(self):
        spec, profile = GPUSpec(), WarpProfile()
        lanes = [_state([7, -1], 0.5, 1), _state([1, -1], 0.5, 1)]
        apply_inheritance(
            lanes, valid=[True, False], active=[True, True],
            profile=profile, spec=spec,
        )
        assert profile.sync_cycles > 0


class TestTheorem1Unbiasedness:
    def test_hand_example_two_lane_warp(self):
        """The worked example: C(u1) = {a, b}; only a extends to x.
        True count 1; the root-normalised inherited estimator is unbiased.
        """
        graph = from_edge_list(
            [(0, 2), (1, 3)], labels=[0, 0, 1, 2], name="toy"
        )
        # Query: u1(label 0) - u2(label 1).  Candidates of u1: {0, 1};
        # only vertex 0 has a label-1 neighbour (vertex 2).
        query = QueryGraph.from_edges([0, 1], [(0, 1)])
        cg = build_candidate_graph(graph, query, use_nlf=False, refine_passes=0)
        order = quicksi_order(query, graph)
        truth = count_embeddings(cg, order).count
        assert truth == 1

        spec = GPUSpec(warp_size=2, sm_count=1, resident_warps_per_sm=1)
        engine = GSWORDEngine(
            WanderJoinEstimator(),
            EngineConfig.gsword(tasks_per_warp=64),
            spec,
        )
        estimates = []
        for seed in range(120):
            result = engine.run(cg, order, 64, rng=seed)
            estimates.append(
                result.accumulator.estimate * 0 + result.estimate
            )
        mean = float(np.mean(estimates))
        assert mean == pytest.approx(1.0, abs=0.12)

    def test_inherited_estimate_matches_truth_on_dataset(self):
        graph = load_dataset("yeast")
        query = extract_query(graph, 5, rng=8, query_type="dense")
        cg = build_candidate_graph(graph, query)
        order = quicksi_order(query, graph)
        truth = count_embeddings(cg, order).count
        assert truth > 0
        engine = GSWORDEngine(WanderJoinEstimator(), EngineConfig.gsword())
        result = engine.run(cg, order, 20000, rng=3)
        assert result.estimate == pytest.approx(truth, rel=0.35)

    def test_inheritance_raises_valid_sample_yield(self):
        """Inheritance collects strictly more completed instances per root."""
        graph = load_dataset("yeast")
        query = extract_query(graph, 8, rng=4, query_type="dense")
        cg = build_candidate_graph(graph, query)
        order = quicksi_order(query, graph)
        base = GSWORDEngine(
            WanderJoinEstimator(), EngineConfig.sample_sync_baseline()
        ).run(cg, order, 2048, rng=5)
        opt = GSWORDEngine(
            WanderJoinEstimator(), EngineConfig.gsword()
        ).run(cg, order, 2048, rng=5)
        assert opt.n_valid >= base.n_valid
        assert opt.profile.warp.warp_efficiency >= base.profile.warp.warp_efficiency
