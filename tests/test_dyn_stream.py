"""Tests for synthetic update streams and the edge reservoir."""

import numpy as np
import pytest

from repro.dyn.mutable import MutableGraph
from repro.dyn.stream import (
    EdgeReservoir,
    PreferentialGrowthStream,
    SlidingWindowStream,
    UniformChurnStream,
    drive,
)
from repro.errors import GraphError
from repro.graph.generators import erdos_renyi_graph, random_labels


def make_graph(seed=0):
    base = erdos_renyi_graph(
        200, 300, rng=seed, labels=random_labels(200, 2, rng=seed + 1)
    )
    return MutableGraph(base)


class TestDeterminism:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda seed: UniformChurnStream(5, 5, rng=seed),
            lambda seed: PreferentialGrowthStream(6, rng=seed),
            lambda seed: SlidingWindowStream(4, window=3, rng=seed),
        ],
    )
    def test_same_seed_same_history(self, factory):
        a, b = make_graph(), make_graph()
        drive(a, factory(42), 15)
        drive(b, factory(42), 15)
        assert a.content_fingerprint() == b.content_fingerprint()
        sa, sb = a.snapshot(), b.snapshot()
        assert np.array_equal(sa.offsets, sb.offsets)
        assert np.array_equal(sa.neighbors, sb.neighbors)

    def test_different_seeds_diverge(self):
        a, b = make_graph(), make_graph()
        drive(a, UniformChurnStream(5, 5, rng=1), 10)
        drive(b, UniformChurnStream(5, 5, rng=2), 10)
        assert a.content_fingerprint() != b.content_fingerprint()


class TestUniformChurn:
    def test_edge_count_roughly_stationary(self):
        g = make_graph()
        drive(g, UniformChurnStream(8, 8, rng=0), 30)
        # Inserts of sampled non-edges and deletes of sampled edges are
        # both effective, so |E| stays within the duplicate-collision slack.
        assert abs(g.n_edges - 300) <= 30

    def test_bad_sizes(self):
        with pytest.raises(GraphError):
            UniformChurnStream(-1, 2)


class TestPreferentialGrowth:
    def test_insert_only_growth(self):
        g = make_graph()
        batches = drive(g, PreferentialGrowthStream(6, rng=0), 10)
        assert g.n_edges > 300
        assert all(len(b.deletes) == 0 for b in batches)

    def test_prefers_high_degree_endpoints(self):
        from repro.graph.builder import from_edge_list

        # A star: vertex 0 holds half the degree mass, so it should attract
        # new edges at many times the mean per-vertex rate.
        star = from_edge_list(
            [(0, v) for v in range(1, 51)], labels=[0] * 100
        )
        g = MutableGraph(star)
        drive(g, PreferentialGrowthStream(10, rng=1), 30)
        snap = g.snapshot()
        hub_gain = int(np.diff(snap.offsets)[0]) - 50
        mean_gain = (snap.n_edges - 50) * 2 / g.n_vertices
        assert hub_gain > 3 * mean_gain

    def test_bad_sizes(self):
        with pytest.raises(GraphError):
            PreferentialGrowthStream(0)


class TestSlidingWindow:
    def test_expiry_after_window(self):
        g = make_graph()
        stream = SlidingWindowStream(5, window=3, rng=0)
        inserted = []
        for i in range(10):
            batch = stream.next_batch(g)
            g.apply(batch)
            inserted.append(batch.inserts)
            # Everything inserted more than `window` batches ago is gone.
            for old in inserted[: max(0, i + 1 - 3)]:
                for u, v in old:
                    assert not g.has_edge(int(u), int(v))
            # The most recent batch is present.
            for u, v in inserted[-1]:
                assert g.has_edge(int(u), int(v))

    def test_steady_state_edge_count(self):
        g = make_graph()
        drive(g, SlidingWindowStream(5, window=4, rng=0), 20)
        # Base edges are never expired; the stream's own live window holds
        # at most window * edges_per_batch extras.
        assert 300 <= g.n_edges <= 300 + 4 * 5

    def test_bad_params(self):
        with pytest.raises(GraphError):
            SlidingWindowStream(0, window=2)
        with pytest.raises(GraphError):
            SlidingWindowStream(2, window=0)


class TestEdgeReservoir:
    def test_fills_then_caps(self):
        res = EdgeReservoir(10, rng=0)
        res.observe_batch(np.arange(6).reshape(3, 2))
        assert res.n_seen == 3 and len(res.sample()) == 3
        res.observe_batch(np.arange(40).reshape(20, 2))
        assert res.n_seen == 23 and len(res.sample()) == 10

    def test_sample_is_subset_of_stream(self):
        res = EdgeReservoir(8, rng=1)
        seen = [(i, i + 1) for i in range(100)]
        res.observe_batch(np.asarray(seen))
        assert set(map(tuple, res.sample().tolist())) <= set(seen)

    def test_uniform_inclusion(self):
        """Algorithm R: every stream position equally likely to survive."""
        hits = np.zeros(50)
        for seed in range(200):
            res = EdgeReservoir(5, rng=seed)
            res.observe_batch(np.stack([np.arange(50)] * 2, axis=1))
            for u, _ in res.sample():
                hits[int(u)] += 1
        # Expected 20 hits per position; a late-biased or early-biased
        # sampler fails this by an order of magnitude.
        assert hits.min() > 5 and hits.max() < 45

    def test_substream_isolation(self):
        """A reservoir spawned from the same root seed as a stream must not
        perturb the stream's draws (it uses a spawned child substream)."""
        a, b = make_graph(), make_graph()
        drive(a, UniformChurnStream(5, 5, rng=7), 12)
        res = EdgeReservoir(16, rng=7)
        drive(b, UniformChurnStream(5, 5, rng=7), 12, reservoir=res)
        assert a.content_fingerprint() == b.content_fingerprint()
        assert res.n_seen > 0

    def test_reservoir_deterministic(self):
        edges = np.stack([np.arange(80), np.arange(80) + 1], axis=1)
        r1, r2 = EdgeReservoir(6, rng=5), EdgeReservoir(6, rng=5)
        r1.observe_batch(edges)
        r2.observe_batch(edges)
        assert np.array_equal(r1.sample(), r2.sample())

    def test_bad_capacity(self):
        with pytest.raises(GraphError):
            EdgeReservoir(0)
