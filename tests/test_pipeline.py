"""Tests for the CPU-GPU co-processing pipeline (§5, Figure 9)."""

import pytest

from repro.bench.workloads import build_workload
from repro.core.config import EngineConfig
from repro.core.pipeline import CoProcessingPipeline, PipelineConfig
from repro.errors import ConfigError
from repro.estimators.alley import AlleyEstimator
from repro.metrics.qerror import q_error


@pytest.fixture(scope="module")
def wordnet_workload():
    return build_workload("wordnet", 16, "dense", 0)


class TestConfig:
    def test_defaults_valid(self):
        cfg = PipelineConfig()
        assert cfg.n_batches == 6  # the paper's tuned default (§6.5)
        assert cfg.backend == "simulated"

    def test_bad_values_rejected(self):
        with pytest.raises(ConfigError):
            PipelineConfig(n_batches=0)
        with pytest.raises(ConfigError):
            PipelineConfig(cpu_threads=0)
        with pytest.raises(ConfigError):
            PipelineConfig(trawls_per_batch=-1)
        with pytest.raises(ConfigError):
            PipelineConfig(backend="quantum")


class TestPipelineRun:
    def test_underestimation_recovery(self, wordnet_workload):
        """Median over seeds: co-processing's final estimate improves on the
        pure sampling estimate in the underestimation regime (Fig. 15)."""
        import statistics

        w = wordnet_workload
        truth = w.ground_truth()
        q_final, q_sampling = [], []
        for seed in (1, 2, 5):
            pipe = CoProcessingPipeline(
                AlleyEstimator(),
                PipelineConfig(n_batches=6, trawls_per_batch=48),
            )
            result = pipe.run(w.cg, w.order, 3072, rng=seed)
            q_final.append(q_error(truth.count, result.final_estimate))
            q_sampling.append(q_error(truth.count, result.sampling_estimate))
        # Never worse than sampling alone, and strictly better somewhere.
        assert statistics.median(q_final) <= statistics.median(q_sampling)
        assert any(f < s for f, s in zip(q_final, q_sampling))

    def test_batch_accounting(self, wordnet_workload):
        w = wordnet_workload
        cfg = PipelineConfig(n_batches=4, trawls_per_batch=16)
        result = CoProcessingPipeline(AlleyEstimator(), cfg).run(
            w.cg, w.order, 2048, rng=3
        )
        assert len(result.batches) == 4
        assert sum(b.n_samples for b in result.batches) >= 2048
        for batch in result.batches:
            assert batch.gpu_ms > 0
            assert batch.n_trawls == 16
            assert (
                batch.n_trawls_completed + batch.n_trawls_discarded
                <= batch.n_trawls
            )

    def test_overlap_bounds_total_time(self, wordnet_workload):
        """Figure 16: co-processing latency ~ GPU time (CPU hides behind)."""
        w = wordnet_workload
        cfg = PipelineConfig(n_batches=4, trawls_per_batch=32)
        result = CoProcessingPipeline(AlleyEstimator(), cfg).run(
            w.cg, w.order, 2048, rng=3
        )
        assert result.total_pipeline_ms <= result.total_gpu_ms * 1.001
        # And the CPU never exceeds its per-batch budget.
        for batch in result.batches:
            assert batch.cpu_ms <= batch.gpu_ms * 1.001

    def test_more_threads_complete_more_trawls(self, wordnet_workload):
        """Figure 18: extra CPU threads complete more enumerations."""
        w = wordnet_workload
        few = CoProcessingPipeline(
            AlleyEstimator(),
            PipelineConfig(n_batches=4, trawls_per_batch=64, cpu_threads=1,
                           enum_nodes_per_ms=3000.0),
        ).run(w.cg, w.order, 2048, rng=9)
        many = CoProcessingPipeline(
            AlleyEstimator(),
            PipelineConfig(n_batches=4, trawls_per_batch=64, cpu_threads=12,
                           enum_nodes_per_ms=3000.0),
        ).run(w.cg, w.order, 2048, rng=9)
        assert many.n_enumerated >= few.n_enumerated

    def test_sampling_estimate_unaffected_by_trawling(self, wordnet_workload):
        """The GPU estimate stream is produced regardless of trawling."""
        w = wordnet_workload
        no_trawl = CoProcessingPipeline(
            AlleyEstimator(),
            PipelineConfig(n_batches=4, trawls_per_batch=0),
        ).run(w.cg, w.order, 2048, rng=7)
        assert no_trawl.n_trawl_samples == 0
        assert no_trawl.n_enumerated == 0
        # Falls back to the sampling estimate.
        assert no_trawl.final_estimate == no_trawl.sampling_estimate

    def test_too_few_samples_rejected(self, wordnet_workload):
        w = wordnet_workload
        pipe = CoProcessingPipeline(AlleyEstimator(), PipelineConfig(n_batches=8))
        with pytest.raises(ConfigError):
            pipe.run(w.cg, w.order, 4, rng=0)

    def test_threads_backend_runs(self, wordnet_workload):
        w = wordnet_workload
        cfg = PipelineConfig(
            n_batches=2, trawls_per_batch=8, backend="threads",
            wallclock_budget_scale=2.0,
        )
        result = CoProcessingPipeline(AlleyEstimator(), cfg).run(
            w.cg, w.order, 1024, rng=11
        )
        assert len(result.batches) == 2
        assert result.n_samples >= 1024

    def test_engine_config_respected(self, wordnet_workload):
        w = wordnet_workload
        cfg = PipelineConfig(
            n_batches=2,
            trawls_per_batch=4,
            engine_config=EngineConfig.gpu_baseline(),
        )
        result = CoProcessingPipeline(AlleyEstimator(), cfg).run(
            w.cg, w.order, 1024, rng=2
        )
        # Baseline engine: no inheritance, so collected == requested exactly.
        assert result.n_samples == 1024
