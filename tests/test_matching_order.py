"""Tests for matching orders (QuickSI / G-CARE / round-robin selection)."""

import pytest

from repro.errors import QueryError
from repro.graph.datasets import load_dataset
from repro.query.extract import extract_query
from repro.query.matching_order import (
    MatchingOrder,
    gcare_order,
    quicksi_order,
    random_valid_order,
    select_best_order,
)
from repro.query.query_graph import QueryGraph, path_query


def _assert_connected_order(query, order):
    """Every vertex after the first must have a matched backward neighbour."""
    assert sorted(order.order) == list(range(query.n_vertices))
    for i in range(1, len(order)):
        assert order.backward[i], f"position {i} has no backward neighbour"
    # position is the inverse permutation.
    for i, u in enumerate(order.order):
        assert order.position[u] == i


class TestMatchingOrderStructure:
    def test_from_permutation_valid(self, paper_query):
        order = MatchingOrder.from_permutation(paper_query, [0, 1, 2, 3, 4])
        _assert_connected_order(paper_query, order)

    def test_disconnected_permutation_rejected(self, paper_query):
        # u5 (index 4) only touches u4 (index 3); starting 0 then 4 breaks.
        with pytest.raises(QueryError):
            MatchingOrder.from_permutation(paper_query, [0, 4, 1, 2, 3])

    def test_non_permutation_rejected(self, paper_query):
        with pytest.raises(QueryError):
            MatchingOrder.from_permutation(paper_query, [0, 0, 1, 2, 3])

    def test_backward_positions_point_to_neighbours(self, paper_query):
        order = MatchingOrder.from_permutation(paper_query, [0, 1, 2, 3, 4])
        for i in range(1, len(order)):
            u = order.order[i]
            for j in order.backward[i]:
                assert paper_query.has_edge(u, order.order[j])


class TestHeuristics:
    def test_quicksi_valid_on_datasets(self):
        graph = load_dataset("yeast")
        for k in (4, 8):
            q = extract_query(graph, k, rng=k, query_type="dense")
            _assert_connected_order(q, quicksi_order(q, graph))

    def test_gcare_valid_on_datasets(self):
        graph = load_dataset("yeast")
        q = extract_query(graph, 8, rng=2, query_type="dense")
        _assert_connected_order(q, gcare_order(q, graph))

    def test_quicksi_starts_rarest(self):
        graph = load_dataset("yeast")
        q = extract_query(graph, 6, rng=1, query_type="dense")
        order = quicksi_order(q, graph)
        # The start vertex has minimal label/degree-filter frequency.
        from repro.query.matching_order import _candidate_frequency

        freq = _candidate_frequency(q, graph)
        assert freq[order.order[0]] == freq.min()

    def test_random_order_valid(self, paper_query):
        for seed in range(5):
            order = random_valid_order(paper_query, rng=seed)
            _assert_connected_order(paper_query, order)

    def test_methods_labelled(self, paper_query):
        graph = load_dataset("yeast")
        q = extract_query(graph, 4, rng=0)
        assert quicksi_order(q, graph).method == "quicksi"
        assert gcare_order(q, graph).method == "gcare"


class TestRoundRobinSelection:
    def test_select_best_order_uses_evaluator(self):
        graph = load_dataset("yeast")
        q = extract_query(graph, 6, rng=4, query_type="dense")

        # Prefer the g-care order by construction.
        def evaluate(order):
            return 0.0 if order.method == "gcare" else 1.0

        best = select_best_order(q, graph, evaluate, extra_candidates=1, rng=0)
        assert best.method == "gcare"

    def test_select_best_order_pilot_variance(self):
        # A realistic evaluator: pilot-sample estimator variance.
        from repro.candidate.candidate_graph import build_candidate_graph
        from repro.estimators.cpu_runner import CPUSamplingRunner
        from repro.estimators.wanderjoin import WanderJoinEstimator

        graph = load_dataset("yeast")
        q = extract_query(graph, 5, rng=6, query_type="dense")
        cg = build_candidate_graph(graph, q)

        def evaluate(order):
            runner = CPUSamplingRunner(WanderJoinEstimator())
            result = runner.run(cg, order, 200, rng=1)
            return result.accumulator.variance

        best = select_best_order(q, graph, evaluate, extra_candidates=2, rng=1)
        _assert_connected_order(q, best)
