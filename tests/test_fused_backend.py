"""Fused-backend edge cases: plan compilation, the fallback ladder,
scratch-arena reuse, and the row-wise union counter.

The broad bit-identity matrix lives in ``test_backend_equivalence.py``
(BACKENDS includes ``fused``, so every parametrised case there already
runs the compiled plans).  This module pins the corners that matrix does
not reach: single-level plans, estimators with no fused kernel, silent
fallbacks and their ``backend_label``, arena allocation plateaus, and the
union/contains kernels against their reference implementations.
"""

import json

import numpy as np
import pytest

from repro.candidate.candidate_graph import build_candidate_graph
from repro.core.config import EngineConfig, SyncMode
from repro.core.engine import GPURunResult, GSWORDEngine
from repro.core.fused import (
    FusedArena,
    FusedRunner,
    _scan_union_rows,
    _touch_union_rows,
    runner_for_kernel,
)
from repro.core.vectorized import LaneStateScratch, WaveRunner, wave_params_for
from repro.estimators.alley import AlleyEstimator
from repro.estimators.fused import (
    HAVE_NUMBA,
    FusedAlleyKernel,
    FusedWanderJoinKernel,
    fused_contains,
    fused_kernel_for,
)
from repro.estimators.vectorized import ragged_contains, vector_kernel_for
from repro.estimators.wanderjoin import WanderJoinEstimator
from repro.gpu.costmodel import DEFAULT_GPU
from repro.gpu.memory import (
    ARRAY_GLOBAL_CANDIDATES,
    ARRAY_LOCAL_CANDIDATES,
    batched_union_counts,
)
from repro.graph.datasets import load_dataset
from repro.query.extract import extract_query
from repro.query.matching_order import quicksi_order
from repro.serve.metrics import ServiceMetrics
from repro.utils.lanerng import lane_key
from repro.utils.rng import spawn_generator_states

_PROFILE_FIELDS = (
    "compute_cycles", "mem_cycles", "sync_cycles", "stall_long",
    "stall_wait", "mem_segments", "region_misses", "lane_busy",
    "lane_total", "iterations",
)


@pytest.fixture(scope="module")
def plan6():
    graph = load_dataset("yeast")
    query = extract_query(graph, 6, rng=11, name="fused-q6")
    cg = build_candidate_graph(graph, query)
    assert not cg.is_empty()
    return cg, quicksi_order(query, graph)


def _run(estimator, config, cg, order, n=192, seed=7):
    engine = GSWORDEngine(estimator, config=config)
    return engine.run(cg, order, n, rng=seed, collect_states=True)


def assert_identical(a, b):
    assert a.estimate == b.estimate
    assert a.n_samples == b.n_samples
    assert a.n_valid == b.n_valid
    assert a.simulated_ms() == b.simulated_ms()
    for field in _PROFILE_FIELDS:
        assert getattr(a.profile.warp, field) == getattr(b.profile.warp, field)
    assert a.collected == b.collected


class TestPlanEdges:
    def test_single_level_plan(self, plan6):
        """max_depth=1 compiles a one-level (global root) plan and stays
        bit-identical to the scalar path."""
        cg, order = plan6
        for est_cls in (WanderJoinEstimator, AlleyEstimator):
            fus = _run(
                est_cls(),
                EngineConfig.gsword(backend="fused", max_depth=1),
                cg, order,
            )
            sca = _run(
                est_cls(),
                EngineConfig.gsword(backend="scalar", max_depth=1),
                cg, order,
            )
            assert fus.backend == "fused"
            assert_identical(fus, sca)

    def test_plan_cached_per_target(self, plan6):
        cg, order = plan6
        kernel = FusedWanderJoinKernel(cg, order)
        assert kernel.compile_plan(4) is kernel.compile_plan(4)
        assert kernel.compile_plan(4) is not kernel.compile_plan(3)
        assert len(kernel.compile_plan(3).levels) == 3

    def test_plan_ir_json_serializable(self, plan6):
        cg, order = plan6
        for kernel_cls in (FusedWanderJoinKernel, FusedAlleyKernel):
            plan = kernel_cls(cg, order).compile_plan(len(order))
            ir = plan.to_ir()
            roundtrip = json.loads(json.dumps(ir))
            assert roundtrip["kernel"] == kernel_cls.__name__
            assert roundtrip["target"] == len(order)
            assert len(roundtrip["levels"]) == len(order)
            assert roundtrip["levels"][0]["kind"] == "global"
            for level in roundtrip["levels"]:
                if level["kind"] == "backward":
                    assert len(level["pairs"]) == level["n_backward"]


class TestFallbackLadder:
    def test_custom_estimator_falls_back_to_scalar(self, plan6):
        """Subclasses may override any RSV hook, so no compiled or vector
        kernel applies: the run lands on the scalar rung."""
        cg, order = plan6

        class TweakedWJ(WanderJoinEstimator):
            pass

        assert fused_kernel_for(TweakedWJ()) is None
        res = _run(
            TweakedWJ(), EngineConfig.gsword(backend="fused"), cg, order
        )
        ref = _run(
            WanderJoinEstimator(),
            EngineConfig.gsword(backend="scalar"),
            cg, order,
        )
        assert res.backend == "scalar"
        assert res.backend_label == "fused_fallback_scalar"
        assert_identical(res, ref)

    def test_iteration_sync_falls_back_to_vectorized(self, plan6):
        """The compiled schedule needs depth lockstep; gpu_baseline runs
        iteration sync, so fused degrades one rung, not two."""
        cg, order = plan6
        res = _run(
            AlleyEstimator(),
            EngineConfig.gpu_baseline(backend="fused"),
            cg, order,
        )
        ref = _run(
            AlleyEstimator(),
            EngineConfig.gpu_baseline(backend="scalar"),
            cg, order,
        )
        assert res.backend == "vectorized"
        assert res.backend_label == "fused_fallback_vectorized"
        assert_identical(res, ref)

    def test_runner_for_kernel_matches_sync_mode(self, plan6):
        cg, order = plan6
        kernel = FusedAlleyKernel(cg, order)
        sample = _params(len(order), SyncMode.SAMPLE)
        assert isinstance(runner_for_kernel(kernel, sample), FusedRunner)
        iteration = _params(len(order), SyncMode.ITERATION)
        assert isinstance(runner_for_kernel(kernel, iteration), WaveRunner)
        with pytest.raises(ValueError):
            FusedRunner(kernel, iteration)

    def test_backend_label_spelling(self):
        assert _result("fused").backend_label == "fused"
        assert _result("fused", "fused").backend_label == "fused"
        assert (
            _result("vectorized", "fused").backend_label
            == "fused_fallback_vectorized"
        )
        assert (
            _result("scalar", "fused").backend_label
            == "fused_fallback_scalar"
        )

    def test_rounds_by_backend_metric_counts_labels(self):
        metrics = ServiceMetrics()
        metrics.record_backends(
            ["fused", "fused", "fused_fallback_vectorized", "scalar"]
        )
        assert metrics.rounds_by_backend == {
            "fused": 2,
            "fused_fallback_vectorized": 1,
            "scalar": 1,
        }


def _result(backend, requested=""):
    from repro.estimators.ht import HTAccumulator
    from repro.gpu.profiler import KernelProfile

    return GPURunResult(
        estimate=0.0, n_samples=0, n_root_samples=0, n_valid=0,
        accumulator=HTAccumulator(), profile=KernelProfile(), n_warps=0,
        tasks_per_warp=1, longest_warp_cycles=0.0, spec=DEFAULT_GPU,
        backend=backend, requested_backend=requested,
    )


def _params(target, sync_mode):
    from repro.core.vectorized import WaveParams

    return WaveParams(
        spec=DEFAULT_GPU,
        sync_mode=sync_mode,
        inheritance=sync_mode is SyncMode.SAMPLE,
        streaming=False,
        streaming_threshold=32,
        target=target,
        n_q=target,
        warp_size=DEFAULT_GPU.warp_size,
        has_refine=True,
        collect_states=False,
    )


class TestArenaReuse:
    def test_engine_arena_is_engine_lifetime(self, plan6):
        cg, order = plan6
        engine = GSWORDEngine(
            AlleyEstimator(), config=EngineConfig.gsword(backend="fused")
        )
        arena = engine._fused_arena()
        assert arena is engine._fused_arena()
        engine.run(cg, order, 96, rng=1)
        assert arena.n_allocations > 0
        assert arena is engine._fused_arena()

    def test_allocations_plateau_across_rounds(self, plan6):
        """A wave as large as any before allocates nothing — including
        after rounds with a different warp count."""
        cg, order = plan6
        engine = GSWORDEngine(
            WanderJoinEstimator(),
            config=EngineConfig.gsword(backend="fused"),
        )
        engine.run(cg, order, 512, rng=1)
        arena = engine._fused_arena()
        high_water = arena.n_allocations
        engine.run(cg, order, 96, rng=2)   # fewer warps: reuse slices
        engine.run(cg, order, 512, rng=3)  # back to the high-water mark
        assert arena.n_allocations == high_water

    def test_arena_grows_then_reuses(self):
        arena = FusedArena()
        a = arena.take("buf", (4, 8), np.int64)
        assert arena.n_allocations == 1
        b = arena.take("buf", (2, 8), np.int64)
        assert arena.n_allocations == 1  # smaller: sliced from the same buffer
        assert b.base is a.base or b.base is a
        arena.take("buf", (8, 8), np.int64)
        assert arena.n_allocations == 2  # grew: one real allocation
        arena.take("buf", (8, 8), np.float64)
        assert arena.n_allocations == 3  # dtype change reallocates
        z = arena.zeros("buf", (8, 8), np.float64)
        assert arena.n_allocations == 3
        assert not z.any()


class TestKernelsAgainstReference:
    def test_fused_contains_matches_ragged_contains(self):
        rng = np.random.default_rng(42)
        arr = np.sort(rng.integers(0, 500, size=400))
        lo = rng.integers(0, 380, size=1000)
        hi = np.minimum(400, lo + rng.integers(0, 40, size=1000))
        vals = rng.integers(0, 500, size=1000)
        np.testing.assert_array_equal(
            fused_contains(arr, lo, hi, vals),
            ragged_contains(arr, lo, hi, vals),
        )

    @pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
    def test_jit_contains_matches_ragged_contains(self):
        """When the optional JIT is present both paths must agree (the
        numpy fallback is the reference)."""
        from repro.estimators.fused import _nb_contains

        rng = np.random.default_rng(7)
        arr = np.sort(rng.integers(0, 200, size=150))
        lo = rng.integers(0, 140, size=300).astype(np.int64)
        hi = np.minimum(150, lo + rng.integers(0, 30, size=300))
        vals = rng.integers(0, 200, size=300).astype(np.int64)
        np.testing.assert_array_equal(
            _nb_contains(arr, lo, hi, vals),
            ragged_contains(arr, lo, hi, vals),
        )

    def test_union_rows_match_batched_union_counts(self):
        """The fused runner's row-wise union sweep must count exactly what
        the global-sort reference counts, for both charge shapes."""
        rng = np.random.default_rng(2024)
        spec = DEFAULT_GPU
        R, W = 13, spec.warp_size
        for trial in range(20):
            m = rng.random((R, W)) < rng.random()
            eid = np.where(
                rng.random((R, W)) < 0.2,
                np.int64(-1),
                rng.integers(0, 6, size=(R, W)),
            )
            starts = rng.integers(0, 4000, size=(R, W))
            lengths = rng.integers(1, 200, size=(R, W))
            aid = np.where(
                eid >= 0, ARRAY_LOCAL_CANDIDATES, ARRAY_GLOBAL_CANDIDATES
            )
            rows, lanes = np.nonzero(m)
            none = np.zeros(0, dtype=np.int64)

            # Scan shape (refine estimators): one [start, start+len) span.
            first = starts // spec.segment_elements
            last = (starts + lengths - 1) // spec.segment_elements
            segs, extra = _scan_union_rows(m, eid, first, last)
            ref_segs, ref_extra = batched_union_counts(
                spec, R, rows, aid[m], eid[m], starts[m], lengths[m],
                none, none, none, none,
            )
            np.testing.assert_array_equal(segs, ref_segs, err_msg=f"t{trial}")
            np.testing.assert_array_equal(extra, ref_extra)

            # Touch shape (validate probes): one single-element position.
            touch = starts // spec.segment_elements
            segs, extra = _touch_union_rows(m, eid, touch)
            ref_segs, ref_extra = batched_union_counts(
                spec, R, none, none, none, none, none,
                rows, aid[m], eid[m], starts[m],
            )
            np.testing.assert_array_equal(segs, ref_segs)
            np.testing.assert_array_equal(extra, ref_extra)


class TestCounterReplay:
    """Counter-mode warps replay from bare lane keys.

    The optimistic-quota path re-runs a single warp in isolation
    (:meth:`repro.core.vectorized.VectorWarpProvider.warp`), and in
    counter mode the warp's state is a pure ``LaneKey`` — nothing to
    clone, no generator position to restore.  These tests pin that the
    isolated re-run reproduces the warp's wave results bit-for-bit on
    both the interpreting and the compiled runner.
    """

    @pytest.mark.parametrize("fused", [False, True])
    def test_isolated_rerun_matches_wave(self, plan6, fused):
        cg, order = plan6
        config = EngineConfig.gsword(rng_mode="counter")
        engine = GSWORDEngine(WanderJoinEstimator(), config=config)
        if fused:
            kernel = fused_kernel_for(WanderJoinEstimator())(cg, order)
        else:
            kernel = vector_kernel_for(WanderJoinEstimator())(cg, order)
        params = wave_params_for(engine, order, collect_states=False)
        assert params.rng_mode == "counter"
        runner = runner_for_kernel(kernel, params)
        keys = [lane_key(s) for s in spawn_generator_states(123, 4)]
        quotas = [32, 32, 32, 17]
        wave = runner.run_warps(keys, quotas)
        for w in range(4):
            # Same key, same quota, warp alone in its wave: the per-warp
            # draw counters make the result independent of wave packing.
            alone = runner.run_warps([keys[w]], [quotas[w]])[0]
            assert alone == wave[w]
            # And replaying does not consume the key (purity).
            again = runner.run_warps([keys[w]], [quotas[w]])[0]
            assert again == alone

    def test_engine_quota_rerun_counter_mode(self, plan6):
        """End-to-end: inheritance shrinks optimistic quotas, forcing the
        provider's isolated re-run path, and the run still matches the
        scalar reference."""
        cg, order = plan6
        a = _run(
            WanderJoinEstimator(),
            EngineConfig.gsword(backend="scalar", rng_mode="counter"),
            cg, order, n=192, seed=7,
        )
        b = _run(
            WanderJoinEstimator(),
            EngineConfig.gsword(backend="fused", rng_mode="counter"),
            cg, order, n=192, seed=7,
        )
        assert_identical(a, b)
