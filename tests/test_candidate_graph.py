"""Tests for candidate filters and the triple-CSR candidate graph."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.candidate.candidate_graph import build_candidate_graph
from repro.candidate.filters import (
    label_degree_filter,
    nlf_filter,
    refine_global_candidates,
)
from repro.enumeration.backtracking import enumerate_embeddings
from repro.errors import CandidateGraphError
from repro.graph.builder import from_edge_list
from repro.graph.datasets import load_dataset
from repro.query.extract import extract_query
from repro.query.matching_order import quicksi_order
from repro.query.query_graph import QueryGraph


class TestFilters:
    def test_label_degree_filter(self, paper_graph, paper_query):
        cands = label_degree_filter(paper_graph, paper_query)
        # u1 has label A: v1, v2 are A-labelled with sufficient degree.
        assert set(cands[0]) <= {0, 1}
        for u in range(paper_query.n_vertices):
            for v in cands[u]:
                assert paper_graph.label(int(v)) == paper_query.label(u)
                assert paper_graph.degree(int(v)) >= paper_query.degree(u)

    def test_nlf_filter_sound(self, paper_graph, paper_query):
        base = label_degree_filter(paper_graph, paper_query)
        refined = nlf_filter(paper_graph, paper_query, base)
        for u in range(paper_query.n_vertices):
            assert set(refined[u]) <= set(base[u])

    def test_refinement_reaches_fixpoint(self, paper_graph, paper_query):
        base = label_degree_filter(paper_graph, paper_query)
        once = refine_global_candidates(paper_graph, paper_query, base, passes=8)
        twice = refine_global_candidates(paper_graph, paper_query, once, passes=1)
        for a, b in zip(once, twice):
            assert list(a) == list(b)

    def test_filters_never_drop_embedding_vertices(self):
        """Soundness: every vertex of every embedding survives filtering."""
        graph = load_dataset("yeast")
        query = extract_query(graph, 5, rng=3, query_type="dense")
        cg = build_candidate_graph(graph, query, use_nlf=True, refine_passes=3)
        order = quicksi_order(query, graph)
        found = 0
        for embedding in enumerate_embeddings(cg, order, limit=50):
            found += 1
            for u, v in enumerate(embedding):
                assert v in set(int(x) for x in cg.global_candidates[u])
        assert found > 0


class TestCandidateGraphStructure:
    def test_validate_passes(self, paper_workload):
        _, _, cg, _ = paper_workload
        cg.validate()

    def test_edge_ids_cover_both_directions(self, paper_workload):
        _, query, cg, _ = paper_workload
        assert cg.n_directed_edges == 2 * query.n_edges
        for u, v in query.edges():
            assert cg.edge_id(u, v) != cg.edge_id(v, u)

    def test_unknown_edge_rejected(self, paper_workload):
        _, _, cg, _ = paper_workload
        with pytest.raises(CandidateGraphError):
            cg.edge_id(0, 4)

    def test_local_candidates_are_neighbours(self, paper_workload):
        graph, _, cg, _ = paper_workload
        for eid, u, u_prime in cg.directed_edges():
            for v in cg.candidates_of_edge(eid):
                for w in cg.local_candidates(eid, int(v)):
                    assert graph.has_edge(int(v), int(w))
                    assert int(w) in set(
                        int(x) for x in cg.global_candidates[u_prime]
                    )

    def test_local_candidates_missing_vertex_empty(self, paper_workload):
        _, _, cg, _ = paper_workload
        eid = cg.directed_edges()[0][0]
        assert len(cg.local_candidates(eid, 9999)) == 0
        assert cg.local_slice(eid, 9999) == (0, 0)

    def test_has_local_candidate(self, paper_workload):
        _, _, cg, _ = paper_workload
        for eid, u, u_prime in cg.directed_edges():
            for v in cg.candidates_of_edge(eid):
                local = cg.local_candidates(eid, int(v))
                for w in local:
                    assert cg.has_local_candidate(eid, int(v), int(w))
                assert not cg.has_local_candidate(eid, int(v), 10**6)

    def test_figure2_example_local_set(self):
        """Example 1: C(u2) = {v3..v6} and C(u2, u4, v3) = {v7, v9}."""
        labels = [0, 0, 1, 1, 1, 1, 2, 3, 2]
        edges = [
            (0, 2), (0, 3), (0, 4), (1, 4), (1, 5), (2, 3),
            (2, 6), (3, 6), (6, 7), (2, 8), (3, 7),
        ]
        graph = from_edge_list(edges, labels=labels, name="fig2")
        query = QueryGraph.from_edges(
            [0, 1, 1, 2, 3], [(0, 1), (1, 2), (1, 3), (2, 3), (3, 4)]
        )
        cg = build_candidate_graph(
            graph, query, use_nlf=False, refine_passes=0
        )
        # u2 is query vertex 1 (label B): candidates among v3..v6 = ids 2..5
        # that pass the degree filter (deg >= 3).
        assert set(int(x) for x in cg.global_candidates[1]) <= {2, 3, 4, 5}
        # Local set of v3 (id 2) along (u2 -> u4): C-labelled neighbours
        # inside C(u4).  The paper's figure lists {v7, v9}; our fixture's v9
        # has degree 1 < deg(u4) so the degree filter prunes it — only v7
        # remains (the filter is sound: v9 is in no instance).
        eid = cg.edge_id(1, 3)
        local = set(int(x) for x in cg.local_candidates(eid, 2))
        assert local == {6}  # v7

    def test_memory_and_transfer_accounting(self, paper_workload):
        _, _, cg, _ = paper_workload
        assert cg.memory_bytes() > 0
        assert cg.transfer_ms() > 0
        assert cg.construction_ms >= 0
        assert cg.total_local_entries() == len(cg.local_vertices)

    def test_empty_candidate_graph_detected(self):
        # Query label 9 does not exist in the graph.
        graph = from_edge_list([(0, 1)], labels=[0, 0])
        query = QueryGraph.from_edges([9, 0], [(0, 1)])
        cg = build_candidate_graph(graph, query)
        assert cg.is_empty()


class TestCompleteness:
    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=10, deadline=None)
    def test_every_embedding_is_representable(self, seed):
        """Completeness: all embeddings survive in the candidate graph's
        local sets (checked via full enumeration equality elsewhere)."""
        graph = load_dataset("yeast")
        query = extract_query(graph, 4, rng=seed, query_type="dense")
        cg = build_candidate_graph(graph, query)
        order = quicksi_order(query, graph)
        for embedding in enumerate_embeddings(cg, order, limit=20):
            for (u, u_prime) in query.edges():
                assert graph.has_edge(embedding[u], embedding[u_prime])


class TestValidateAdversarial:
    """validate() must reject every class of corruption it claims to check.

    The dynamic subsystem calls validate() after every delta refresh
    (DeltaPlanMaintainer's validate_after_refresh), so these tests pin down
    that the audit actually bites — a validate() that silently passes
    corrupted CSR arrays would void that safety net.
    """

    @pytest.fixture()
    def cg(self):
        from repro.graph.generators import erdos_renyi_graph, random_labels

        graph = erdos_renyi_graph(
            120, 200, rng=2, labels=random_labels(120, 2, rng=3)
        )
        query = extract_query(graph, 4, rng=1)
        cg = build_candidate_graph(graph, query)
        assert not cg.is_empty()
        cg.validate()  # sanity: the uncorrupted build passes
        return cg

    @staticmethod
    def _copy(cg, **overrides):
        import dataclasses

        return dataclasses.replace(cg, **overrides)

    def test_unsorted_global_candidates_rejected(self, cg):
        u = next(
            u for u, c in enumerate(cg.global_candidates) if len(c) > 1
        )
        corrupted = [c.copy() for c in cg.global_candidates]
        corrupted[u] = corrupted[u][::-1].copy()
        bad = self._copy(cg, global_candidates=corrupted)
        with pytest.raises(CandidateGraphError, match="not strictly sorted"):
            bad.validate()

    def test_duplicate_global_candidate_rejected(self, cg):
        u = next(
            u for u, c in enumerate(cg.global_candidates) if len(c) > 1
        )
        corrupted = [c.copy() for c in cg.global_candidates]
        corrupted[u][1] = corrupted[u][0]  # duplicate = non-strict order
        bad = self._copy(cg, global_candidates=corrupted)
        with pytest.raises(CandidateGraphError, match="not strictly sorted"):
            bad.validate()

    def test_wrong_label_candidate_rejected(self, cg):
        graph, query = cg.graph, cg.query
        for u in range(query.n_vertices):
            cand = set(int(x) for x in cg.global_candidates[u])
            wrong = [
                v for v in range(graph.n_vertices)
                if graph.label(v) != query.label(u) and v not in cand
            ]
            if wrong:
                break
        corrupted = [c.copy() for c in cg.global_candidates]
        corrupted[u] = np.unique(
            np.append(corrupted[u], np.int64(wrong[0]))
        )
        bad = self._copy(cg, global_candidates=corrupted)
        with pytest.raises(CandidateGraphError, match="wrong label"):
            bad.validate()

    def test_unsorted_edge_candidates_rejected(self, cg):
        eid = next(
            eid for eid, _, _ in cg.directed_edges()
            if len(cg.candidates_of_edge(eid)) > 1
        )
        ecand = cg.ecand_vertices.copy()
        lo, hi = int(cg.ecand_offsets[eid]), int(cg.ecand_offsets[eid + 1])
        ecand[lo:hi] = ecand[lo:hi][::-1]
        bad = self._copy(cg, ecand_vertices=ecand)
        with pytest.raises(CandidateGraphError, match="candidates not sorted"):
            bad.validate()

    def test_unsorted_local_set_rejected(self, cg):
        local = cg.local_vertices.copy()
        for pos in range(len(cg.local_offsets) - 1):
            lo, hi = int(cg.local_offsets[pos]), int(cg.local_offsets[pos + 1])
            if hi - lo > 1:
                local[lo:hi] = local[lo:hi][::-1]
                break
        else:
            pytest.skip("no multi-entry local set in this build")
        bad = self._copy(cg, local_vertices=local)
        with pytest.raises(CandidateGraphError, match="not sorted"):
            bad.validate()

    def test_non_edge_local_candidate_rejected(self, cg):
        graph = cg.graph
        local = cg.local_vertices.copy()
        replaced = False
        for eid, _, _ in cg.directed_edges():
            for v in cg.candidates_of_edge(eid):
                lo, hi = cg.local_slice(eid, int(v))
                width = hi - lo
                if width == 0:
                    continue
                non_nbrs = [
                    w for w in range(graph.n_vertices)
                    if w != int(v) and not graph.has_edge(int(v), w)
                ]
                if len(non_nbrs) >= width:
                    local[lo:hi] = np.asarray(
                        non_nbrs[:width], dtype=local.dtype
                    )
                    replaced = True
                    break
            if replaced:
                break
        assert replaced
        bad = self._copy(cg, local_vertices=local)
        with pytest.raises(CandidateGraphError, match="not a data edge"):
            bad.validate()
