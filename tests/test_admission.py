"""Unit tests for the admission layer (repro/serve/admission.py), the
weighted-fair queue (repro/serve/scheduler.py), the arrival plans
(repro/faults/arrivals.py), and the replay-safe RNG state cloning the
hedged-round bit-identity depends on."""

import math
from collections import deque

import numpy as np
import pytest

from repro.errors import ConfigError, ServiceError
from repro.faults import OVERLOAD, POISSON, ArrivalPlan
from repro.serve.admission import (
    AdmissionController,
    AdmissionPolicy,
    HedgeDelayTracker,
    HedgePolicy,
    TenantQuota,
    TokenBucket,
)
from repro.serve.scheduler import FairQueue, RoundTask
from repro.utils.rng import (
    clone_state,
    generator_from_state,
    spawn_generator_states,
)


# ---------------------------------------------------------------------------
# TokenBucket
# ---------------------------------------------------------------------------
class TestTokenBucket:
    def test_starts_full_and_drains(self):
        bucket = TokenBucket(capacity=3, rate_per_ms=1.0, now_ms=0.0)
        assert all(bucket.try_take(0.0) for _ in range(3))
        assert not bucket.try_take(0.0)

    def test_refills_on_simulated_clock(self):
        bucket = TokenBucket(capacity=2, rate_per_ms=0.5, now_ms=0.0)
        bucket.try_take(0.0)
        bucket.try_take(0.0)
        assert not bucket.try_take(1.0)  # only 0.5 tokens back
        assert bucket.try_take(2.0)      # 1.0 token after 2 ms

    def test_refill_caps_at_capacity(self):
        bucket = TokenBucket(capacity=2, rate_per_ms=10.0, now_ms=0.0)
        bucket._refill(1000.0)
        assert bucket.tokens == 2.0

    def test_time_to_token(self):
        bucket = TokenBucket(capacity=1, rate_per_ms=0.25, now_ms=0.0)
        assert bucket.time_to_token_ms(0.0) == 0.0
        bucket.try_take(0.0)
        assert bucket.time_to_token_ms(0.0) == pytest.approx(4.0)
        assert bucket.time_to_token_ms(2.0) == pytest.approx(2.0)

    def test_unmetered_never_empties(self):
        bucket = TokenBucket(capacity=1, rate_per_ms=None, now_ms=0.0)
        assert all(bucket.try_take(0.0) for _ in range(100))
        assert bucket.time_to_token_ms(0.0) == 0.0

    def test_clock_going_backwards_is_safe(self):
        bucket = TokenBucket(capacity=1, rate_per_ms=1.0, now_ms=10.0)
        bucket.try_take(10.0)
        bucket._refill(5.0)  # no negative elapsed
        assert bucket.tokens == pytest.approx(0.0)


# ---------------------------------------------------------------------------
# AdmissionController.decide
# ---------------------------------------------------------------------------
class TestAdmissionController:
    def test_admits_under_every_limit(self):
        ctrl = AdmissionController(AdmissionPolicy(max_pending=4))
        assert ctrl.decide("a", None, 0, 0.0) is None

    def test_queue_full_shed_and_hint(self):
        ctrl = AdmissionController(AdmissionPolicy(max_pending=2))
        ctrl.observe_batch(1, 10.0)  # EWMA = 10 ms/request
        decision = ctrl.decide("a", None, 2, 0.0)
        assert decision is not None
        assert decision.reason == "queue_full"
        assert decision.retry_after_ms == pytest.approx(10.0)

    def test_queue_full_does_not_consume_token(self):
        policy = AdmissionPolicy(
            max_pending=1,
            quotas={"a": TenantQuota(rate_per_s=1.0, burst=1.0)},
        )
        ctrl = AdmissionController(policy)
        for _ in range(5):
            decision = ctrl.decide("a", None, 1, 0.0)
            assert decision.reason == "queue_full"
        # The bucket was never drawn from: the first admissible call takes
        # its single burst token.
        assert ctrl.decide("a", None, 0, 0.0) is None
        assert ctrl.decide("a", None, 0, 0.0).reason == "quota"

    def test_quota_shed_hints_time_to_token(self):
        policy = AdmissionPolicy(
            max_pending=None,
            quotas={"a": TenantQuota(rate_per_s=1000.0, burst=1.0)},
        )
        ctrl = AdmissionController(policy)
        assert ctrl.decide("a", None, 0, 0.0) is None
        decision = ctrl.decide("a", None, 0, 0.0)
        assert decision.reason == "quota"
        assert decision.retry_after_ms == pytest.approx(1.0)  # 1 token/ms

    def test_quota_isolated_per_tenant(self):
        policy = AdmissionPolicy(
            max_pending=None,
            quotas={"hot": TenantQuota(rate_per_s=1.0, burst=1.0)},
        )
        ctrl = AdmissionController(policy)
        assert ctrl.decide("hot", None, 0, 0.0) is None
        assert ctrl.decide("hot", None, 0, 0.0).reason == "quota"
        # The default quota is unmetered: other tenants sail through.
        for _ in range(10):
            assert ctrl.decide("cold", None, 0, 0.0) is None

    def test_deadline_shed_uses_backlog_prediction(self):
        ctrl = AdmissionController(AdmissionPolicy(max_pending=None))
        ctrl.observe_batch(1, 10.0)  # EWMA = 10 ms/request
        # 5 queued x 10 ms = 50 ms predicted wait > 20 ms deadline.
        decision = ctrl.decide("a", 20.0, 5, 0.0)
        assert decision.reason == "deadline"
        assert decision.retry_after_ms == pytest.approx(30.0)
        # A feasible deadline (or none at all) is admitted.
        assert ctrl.decide("a", 100.0, 5, 0.0) is None
        assert ctrl.decide("a", None, 5, 0.0) is None

    def test_deadline_shed_disabled(self):
        ctrl = AdmissionController(
            AdmissionPolicy(max_pending=None, shed_on_deadline=False)
        )
        ctrl.observe_batch(1, 10.0)
        assert ctrl.decide("a", 1.0, 50, 0.0) is None

    def test_retry_after_floor(self):
        ctrl = AdmissionController(
            AdmissionPolicy(max_pending=1, min_retry_after_ms=0.5)
        )
        decision = ctrl.decide("a", None, 1, 0.0)  # no EWMA yet
        assert decision.retry_after_ms == pytest.approx(0.5)

    def test_ewma_converges(self):
        ctrl = AdmissionController(AdmissionPolicy(ewma_alpha=0.5))
        ctrl.observe_batch(2, 8.0)   # 4 ms/request seeds the EWMA
        ctrl.observe_batch(1, 8.0)   # 0.5*4 + 0.5*8
        assert ctrl.ewma_request_ms == pytest.approx(6.0)
        ctrl.observe_batch(0, 5.0)   # ignored
        ctrl.observe_batch(3, 0.0)   # ignored
        assert ctrl.ewma_request_ms == pytest.approx(6.0)

    def test_snapshot_shape(self):
        ctrl = AdmissionController(AdmissionPolicy())
        ctrl.decide("a", None, 0, 0.0)
        snap = ctrl.snapshot()
        assert "ewma_request_ms" in snap
        assert "a" in snap["buckets"]

    def test_policy_validation(self):
        with pytest.raises(ConfigError):
            AdmissionPolicy(max_pending=0)
        with pytest.raises(ConfigError):
            AdmissionPolicy(ewma_alpha=0.0)
        with pytest.raises(ConfigError):
            AdmissionPolicy(min_retry_after_ms=0.0)
        with pytest.raises(ConfigError):
            TenantQuota(rate_per_s=0.0)
        with pytest.raises(ConfigError):
            TenantQuota(weight=0.0)
        with pytest.raises(ConfigError):
            TenantQuota(burst=0.5)


# ---------------------------------------------------------------------------
# HedgeDelayTracker
# ---------------------------------------------------------------------------
class TestHedgeDelayTracker:
    def test_unarmed_until_min_observations(self):
        tracker = HedgeDelayTracker(HedgePolicy(min_observations=4))
        for _ in range(3):
            tracker.observe(1.0)
        assert tracker.hedge_delay_ms() is None
        tracker.observe(1.0)
        assert tracker.hedge_delay_ms() is not None

    def test_delay_is_tail_quantile_with_floor(self):
        tracker = HedgeDelayTracker(
            HedgePolicy(quantile=0.5, min_observations=1, delay_floor_ms=0.01)
        )
        for v in (1.0, 2.0, 3.0, 4.0, 100.0):
            tracker.observe(v)
        assert tracker.hedge_delay_ms() == pytest.approx(3.0)
        floor = HedgeDelayTracker(
            HedgePolicy(quantile=0.9, min_observations=1, delay_floor_ms=5.0)
        )
        floor.observe(0.001)
        assert floor.hedge_delay_ms() == pytest.approx(5.0)

    def test_policy_validation(self):
        with pytest.raises(ConfigError):
            HedgePolicy(quantile=1.0)
        with pytest.raises(ConfigError):
            HedgePolicy(min_observations=0)
        with pytest.raises(ConfigError):
            HedgePolicy(delay_floor_ms=0.0)
        with pytest.raises(ConfigError):
            HedgePolicy(max_hedges_per_request=-1)


# ---------------------------------------------------------------------------
# FairQueue
# ---------------------------------------------------------------------------
class _StubConfig:
    tasks_per_warp = 32


class _StubEngine:
    config = _StubConfig()


class _StubSession:
    engine = _StubEngine()


def _task(tenant="default", weight=1.0, n_samples=32):
    return RoundTask(
        session=_StubSession(), n_samples=n_samples,
        tenant=tenant, weight=weight,
    )


class TestFairQueue:
    def test_single_tenant_is_exact_fifo(self):
        fq = FairQueue()
        dq = deque()
        tasks = [_task(n_samples=32 * (1 + i % 3)) for i in range(20)]
        for t in tasks:
            fq.append(t)
            dq.append(t)
        order_fq = [fq.popleft() for _ in range(len(tasks))]
        order_dq = [dq.popleft() for _ in range(len(tasks))]
        assert order_fq == order_dq

    def test_deque_compatible_surface(self):
        fq = FairQueue()
        assert not fq
        assert len(fq) == 0
        with pytest.raises(IndexError):
            fq[0]
        with pytest.raises(IndexError):
            fq.popleft()
        task = _task()
        fq.append(task)
        assert fq and len(fq) == 1
        assert fq[0] is task          # peek does not pop
        assert fq[0] is task
        with pytest.raises(IndexError):
            fq[1]
        assert list(fq) == [task]
        assert fq.popleft() is task
        assert not fq

    def test_interleaves_tenants_under_contention(self):
        fq = FairQueue()
        for _ in range(10):
            fq.append(_task("hog"))
        fq.append(_task("mouse"))
        drained = [fq.popleft().tenant for _ in range(6)]
        # The mouse's single task is served within the first few pops
        # even though ten hog tasks arrived first.
        assert "mouse" in drained[:2]

    def test_weights_share_proportionally(self):
        fq = FairQueue()
        for _ in range(30):
            fq.append(_task("heavy", weight=2.0))
            fq.append(_task("light", weight=1.0))
        first = [fq.popleft().tenant for _ in range(18)]
        heavy = first.count("heavy")
        light = first.count("light")
        # 2:1 weights -> about two heavy dequeues per light one.
        assert heavy == pytest.approx(2 * light, abs=2)

    def test_sleeping_tenant_banks_no_credit(self):
        fq = FairQueue()
        for _ in range(50):
            fq.append(_task("busy"))
        for _ in range(40):
            fq.popleft()
        # A tenant activating late starts at the queue's virtual time, so
        # it cannot monopolise the head with decades of banked credit.
        fq.append(_task("late"))
        fq.append(_task("late"))
        drained = [fq.popleft().tenant for _ in range(4)]
        assert drained.count("late") <= 2
        assert "busy" in drained

    def test_clear(self):
        fq = FairQueue()
        fq.append(_task("a"))
        fq.append(_task("b"))
        fq.clear()
        assert not fq and len(fq) == 0

    def test_task_validation(self):
        with pytest.raises(ServiceError):
            _task(n_samples=0)
        with pytest.raises(ServiceError):
            _task(weight=0.0)


# ---------------------------------------------------------------------------
# ArrivalPlan
# ---------------------------------------------------------------------------
class TestArrivalPlan:
    def test_deterministic_and_prefix_stable(self):
        plan = ArrivalPlan(seed=7, rate_per_ms=2.0)
        assert plan.times(50) == plan.times(50)
        assert plan.times(50)[:20] == plan.times(20)

    def test_strictly_increasing(self):
        for mode in (POISSON, OVERLOAD):
            times = ArrivalPlan(seed=3, rate_per_ms=5.0, mode=mode).times(200)
            assert all(b > a for a, b in zip(times, times[1:]))

    def test_poisson_rate_roughly_matches(self):
        plan = ArrivalPlan(seed=11, rate_per_ms=4.0)
        times = plan.times(2000)
        observed = len(times) / times[-1]
        assert observed == pytest.approx(4.0, rel=0.15)

    def test_overload_bursts_raise_the_average_rate(self):
        base = ArrivalPlan(seed=5, rate_per_ms=1.0)
        storm = ArrivalPlan(
            seed=5, rate_per_ms=1.0, mode=OVERLOAD,
            burst_factor=4.0, burst_every_ms=50.0, burst_duration_ms=10.0,
        )
        assert storm.expected_rate_per_ms() == pytest.approx(1.6)
        assert base.expected_rate_per_ms() == pytest.approx(1.0)
        # Burst windows really contain more arrivals per ms.
        times = storm.times(4000)
        horizon = times[-1]
        in_burst = sum(1 for t in times if storm.in_burst(t))
        burst_ms = (horizon // 50.0) * 10.0
        calm_ms = horizon - burst_ms
        assert in_burst / burst_ms > (len(times) - in_burst) / calm_ms

    def test_in_burst_windows(self):
        plan = ArrivalPlan(
            seed=0, rate_per_ms=1.0, mode=OVERLOAD,
            burst_every_ms=50.0, burst_duration_ms=10.0,
        )
        assert plan.in_burst(0.0)
        assert plan.in_burst(9.9)
        assert not plan.in_burst(10.0)
        assert not plan.in_burst(49.9)
        assert plan.in_burst(50.0)
        assert plan.rate_at(50.0) == pytest.approx(plan.burst_factor)
        # POISSON mode has no bursts at all.
        assert not ArrivalPlan(seed=0, rate_per_ms=1.0).in_burst(0.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            ArrivalPlan(rate_per_ms=0.0)
        with pytest.raises(ConfigError):
            ArrivalPlan(mode="storm")
        with pytest.raises(ConfigError):
            ArrivalPlan(mode=OVERLOAD, burst_factor=0.5)
        with pytest.raises(ConfigError):
            ArrivalPlan(
                mode=OVERLOAD, burst_every_ms=10.0, burst_duration_ms=10.0
            )
        with pytest.raises(ConfigError):
            ArrivalPlan().times(-1)


# ---------------------------------------------------------------------------
# clone_state (the hedged-replay primitive)
# ---------------------------------------------------------------------------
class TestCloneState:
    def test_clone_replays_direct_draws(self):
        state = spawn_generator_states(1234, 1)[0]
        a = generator_from_state(clone_state(state)).random(8)
        b = generator_from_state(clone_state(state)).random(8)
        assert np.array_equal(a, b)

    def test_clone_is_spawn_safe(self):
        """Spawning from one attempt must not perturb the next attempt's
        spawned sub-streams (SeedSequence.spawn mutates the sequence)."""
        state = spawn_generator_states(99, 1)[0]

        def spawn_and_draw(seq_state):
            rng = generator_from_state(seq_state)
            children = rng.bit_generator.seed_seq.spawn(4)
            return [generator_from_state(c).random() for c in children]

        first = spawn_and_draw(clone_state(state))
        second = spawn_and_draw(clone_state(state))
        assert first == second
        # Without the clone the second consumer sees different children.
        shared = clone_state(state)
        third = spawn_and_draw(shared)
        fourth = spawn_and_draw(shared)
        assert third == first
        assert fourth != first

    def test_int_states_pass_through(self):
        assert clone_state(42) == 42

    def test_math_isfinite_guard(self):
        # Sanity: quantile-based hints in the soak are finite numbers.
        tracker = HedgeDelayTracker(HedgePolicy(min_observations=1))
        tracker.observe(1.0)
        assert math.isfinite(tracker.hedge_delay_ms())
