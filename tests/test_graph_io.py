"""Round-trip and error tests for graph serialisation."""

import pytest

from repro.errors import GraphError
from repro.graph.builder import from_edge_list
from repro.graph.io import dump_graph, dumps_graph, load_graph, loads_graph


def test_roundtrip_string(triangle_graph):
    text = dumps_graph(triangle_graph)
    back = loads_graph(text)
    assert back.n_vertices == triangle_graph.n_vertices
    assert back.n_edges == triangle_graph.n_edges
    assert list(back.labels) == list(triangle_graph.labels)
    assert sorted(back.edges()) == sorted(triangle_graph.edges())


def test_roundtrip_file(tmp_path, paper_graph):
    path = tmp_path / "g.graph"
    dump_graph(paper_graph, path)
    back = load_graph(path)
    assert sorted(back.edges()) == sorted(paper_graph.edges())
    assert back.name == "g"


def test_labels_preserved():
    g = from_edge_list([(0, 1), (1, 2)], labels=[3, 1, 4])
    assert list(loads_graph(dumps_graph(g)).labels) == [3, 1, 4]


def test_comments_and_blanks_ignored():
    text = "# comment\n\nt 2 1\nv 0 0 1\nv 1 0 1\ne 0 1\n"
    g = loads_graph(text)
    assert g.n_edges == 1


def test_missing_header_rejected():
    with pytest.raises(GraphError):
        loads_graph("v 0 0 1\n")


def test_vertex_before_header_rejected():
    with pytest.raises(GraphError):
        loads_graph("v 0 0 1\nt 1 0\n")


def test_edge_count_mismatch_rejected():
    with pytest.raises(GraphError):
        loads_graph("t 2 5\nv 0 0 1\nv 1 0 1\ne 0 1\n")


def test_unknown_record_rejected():
    with pytest.raises(GraphError):
        loads_graph("t 1 0\nx nonsense\n")


def test_malformed_vertex_rejected():
    with pytest.raises(GraphError):
        loads_graph("t 1 0\nv 0\n")


def test_vertex_id_out_of_range_rejected():
    with pytest.raises(GraphError):
        loads_graph("t 1 0\nv 5 0 0\n")
