"""Tests for the benchmark harness: workloads, method runners, reporting."""

import json

import pytest

from repro.bench.harness import METHOD_NAMES, run_method
from repro.bench.reporting import render_series, render_table, save_results
from repro.bench.workloads import (
    LIGHT_FILTER,
    build_workload,
    default_workloads,
)
from repro.errors import ConfigError


class TestWorkloads:
    def test_build_deterministic_and_cached(self):
        a = build_workload("yeast", 8, "dense", 0)
        b = build_workload("yeast", 8, "dense", 0)
        assert a is b  # cached
        assert a.query.n_vertices == 8
        assert a.k == 8 and a.query_type == "dense"

    def test_distinct_indices_distinct_queries(self):
        a = build_workload("yeast", 8, "dense", 0)
        b = build_workload("yeast", 8, "dense", 1)
        assert a.query.edge_set != b.query.edge_set or a.query.labels != b.query.labels

    def test_ground_truth_cached_and_positive(self):
        w = build_workload("yeast", 4, "dense", 0)
        t1 = w.ground_truth()
        t2 = w.ground_truth()
        assert t1 is t2
        assert t1.count > 0  # extracted queries always have an embedding

    def test_default_workloads_grid(self):
        ws = default_workloads(datasets=["yeast", "dblp"], k=8, per_dataset=1)
        assert len(ws) == 4  # 2 datasets x (dense + sparse)
        assert {w.dataset for w in ws} == {"yeast", "dblp"}

    def test_four_vertex_queries_dense_only(self):
        ws = default_workloads(datasets=["yeast"], k=4, per_dataset=2)
        assert len(ws) == 2
        assert all(w.query_type == "dense" for w in ws)

    def test_custom_filter_not_cached(self):
        a = build_workload("yeast", 8, "dense", 0)
        b = build_workload("yeast", 8, "dense", 0, filter_kwargs=LIGHT_FILTER)
        assert a is not b


class TestRunMethod:
    @pytest.mark.parametrize("method", METHOD_NAMES)
    def test_all_table2_methods_run(self, method):
        w = build_workload("yeast", 8, "dense", 0)
        result = run_method(w, method, sim_samples=256)
        assert result.method == method
        assert result.simulated_ms > 0
        assert result.n_samples >= 256

    def test_ablation_methods_run(self):
        w = build_workload("yeast", 8, "dense", 0)
        for method in ("O0-AL", "O1-AL", "O2-AL", "sample-sync-WJ"):
            result = run_method(w, method, sim_samples=256)
            assert result.simulated_ms > 0

    def test_unknown_method_rejected(self):
        w = build_workload("yeast", 8, "dense", 0)
        with pytest.raises(ConfigError):
            run_method(w, "TPU-WJ", sim_samples=16)
        with pytest.raises(ConfigError):
            run_method(w, "nonsense", sim_samples=16)

    def test_gpu_faster_than_cpu(self):
        w = build_workload("yeast", 8, "dense", 0)
        cpu = run_method(w, "CPU-WJ", sim_samples=512)
        gpu = run_method(w, "GPU-WJ", sim_samples=512)
        gsword = run_method(w, "gSWORD-WJ", sim_samples=512)
        assert cpu.simulated_ms > gpu.simulated_ms > gsword.simulated_ms

    def test_seed_salt_varies_stream(self):
        w = build_workload("yeast", 8, "dense", 0)
        a = run_method(w, "CPU-WJ", sim_samples=256, seed_salt=0)
        b = run_method(w, "CPU-WJ", sim_samples=256, seed_salt=1)
        c = run_method(w, "CPU-WJ", sim_samples=256, seed_salt=0)
        assert a.estimate == c.estimate
        # Different salt -> different stream (almost surely different).
        assert a.estimate != b.estimate or a.n_valid != b.n_valid


class TestReporting:
    def test_render_table_alignment(self):
        text = render_table(["name", "ms"], [["x", 1.234], ["longer", 10.0]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "name" in lines[0] and "1.23" in text

    def test_render_series(self):
        text = render_series(
            "Fig X", "k", [4, 8], {"WJ": [1.0, 2.0], "AL": [3.0, 4.0]}
        )
        assert "Fig X" in text and "WJ" in text and "AL" in text

    def test_save_results(self, tmp_path, monkeypatch):
        import repro.bench.reporting as reporting

        monkeypatch.setattr(reporting, "RESULTS_DIR", tmp_path / "res")
        path = reporting.save_results("unit", {"a": 1})
        assert path is not None and path.exists()
        assert json.loads(path.read_text()) == {"a": 1}
