"""Known-answer and contract tests for the counter-based lane RNG."""

import numpy as np
import pytest

from repro.utils.lanerng import (
    LaneKey,
    LaneRNG,
    lane_key,
    philox4x32,
    philox_bounded,
    philox_words,
    spawn_lane_rngs,
    warp_keys,
)
from repro.utils.rng import spawn_generator_states

# Random123 verification vectors for philox4x32-10 (kat_vectors upstream):
# (counter, key) -> output block.
_KATS = [
    (
        (0, 0, 0, 0),
        (0, 0),
        (0x6627E8D5, 0xE169C58D, 0xBC57AC4C, 0x9B00DBD8),
    ),
    (
        (0xFFFFFFFF, 0xFFFFFFFF, 0xFFFFFFFF, 0xFFFFFFFF),
        (0xFFFFFFFF, 0xFFFFFFFF),
        (0x408F276D, 0x41C83B0E, 0xA20BC7C6, 0x6D5451FD),
    ),
    (
        (0x243F6A88, 0x85A308D3, 0x13198A2E, 0x03707344),
        (0xA4093822, 0x299F31D0),
        (0xD16CFE09, 0x94FDCCEB, 0x5001E420, 0x24126EA1),
    ),
]


class TestPhiloxCore:
    def test_random123_known_answers(self):
        counters = np.array([k[0] for k in _KATS], dtype=np.uint64)
        keys = np.array([k[1] for k in _KATS], dtype=np.uint64)
        out = philox4x32(counters, keys)
        expected = np.array([k[2] for k in _KATS], dtype=np.uint32)
        assert out.dtype == np.uint32
        np.testing.assert_array_equal(out, expected)

    def test_known_answers_one_at_a_time(self):
        for counter, key, expected in _KATS:
            out = philox4x32(
                np.array([counter], dtype=np.uint64),
                np.array([key], dtype=np.uint64),
            )
            assert tuple(int(w) for w in out[0]) == expected

    def test_philox_words_matches_block_cipher(self):
        # philox_words packs a 64-bit draw index into counter words 0/1.
        idx = np.array([0, 1, 2**32 - 1, 2**32, 2**40 + 17], dtype=np.uint64)
        counters = np.zeros((len(idx), 4), dtype=np.uint64)
        counters[:, 0] = idx & np.uint64(0xFFFFFFFF)
        counters[:, 1] = idx >> np.uint64(32)
        keys = np.array([[123, 456]] * len(idx), dtype=np.uint64)
        words = philox_words(keys[:, 0], keys[:, 1], idx)
        block = philox4x32(counters, keys)
        np.testing.assert_array_equal(words.astype(np.uint32), block[:, 0])

    def test_distinct_keys_distinct_streams(self):
        idx = np.arange(256, dtype=np.uint64)
        a = philox_words(np.uint64(1), np.uint64(0), idx)
        b = philox_words(np.uint64(2), np.uint64(0), idx)
        assert not np.array_equal(a, b)


class TestBoundedDraws:
    def test_in_range_and_exact_reduction(self):
        idx = np.arange(4096, dtype=np.uint64)
        bounds = np.full(4096, 37, dtype=np.int64)
        draws = philox_bounded(np.uint64(7), np.uint64(9), idx, bounds)
        assert draws.dtype == np.int64
        assert draws.min() >= 0 and draws.max() < 37
        # The multiply-shift reduction must equal the Python-int formula.
        words = philox_words(np.uint64(7), np.uint64(9), idx)
        expected = [(int(w) * 37) >> 32 for w in words]
        np.testing.assert_array_equal(draws, np.array(expected))

    def test_mixed_bounds_one_pass(self):
        idx = np.arange(100, dtype=np.uint64)
        bounds = (np.arange(100, dtype=np.int64) % 13) + 1
        draws = philox_bounded(np.uint64(3), np.uint64(4), idx, bounds)
        assert np.all(draws >= 0)
        assert np.all(draws < bounds)

    def test_bound_one_is_always_zero(self):
        idx = np.arange(64, dtype=np.uint64)
        draws = philox_bounded(np.uint64(5), np.uint64(6), idx, np.int64(1))
        assert not draws.any()


class TestLaneKeys:
    def test_from_seed_sequence_is_pure(self):
        seq = np.random.SeedSequence(42)
        k1 = lane_key(seq)
        k2 = lane_key(seq)
        assert k1 == k2
        assert isinstance(k1, LaneKey)

    def test_from_int_and_passthrough(self):
        k = lane_key(12345)
        assert lane_key(k) is k
        assert k == lane_key(np.random.SeedSequence(12345))

    def test_warp_keys_matches_scalar_derivation(self):
        states = spawn_generator_states(np.random.default_rng(9), 8)
        table = warp_keys(states)
        assert table.shape == (8, 2)
        assert table.dtype == np.uint32
        for i, s in enumerate(states):
            assert lane_key(s) == LaneKey(int(table[i, 0]), int(table[i, 1]))

    def test_spawned_keys_are_distinct(self):
        states = spawn_generator_states(np.random.default_rng(1), 64)
        keys = {lane_key(s) for s in states}
        assert len(keys) == 64


class TestLaneRNG:
    def test_scalar_matches_batch(self):
        rng = LaneRNG(lane_key(7))
        scalar = [rng.integers(0, 50) for _ in range(40)]
        batch = philox_bounded(
            np.uint64(rng.key.k0),
            np.uint64(rng.key.k1),
            np.arange(40, dtype=np.uint64),
            np.int64(50),
        )
        np.testing.assert_array_equal(np.array(scalar), batch)
        assert rng.counter == 40

    def test_array_bounds_consume_in_order(self):
        a = LaneRNG(lane_key(11))
        b = LaneRNG(lane_key(11))
        bounds = np.array([3, 9, 1, 27, 5], dtype=np.int64)
        vec = a.integers(0, bounds)
        scalars = [b.integers(0, int(x)) for x in bounds]
        np.testing.assert_array_equal(vec, np.array(scalars))
        assert a.counter == b.counter == 5

    def test_replay_without_state_cloning(self):
        key = lane_key(np.random.SeedSequence(5))
        first = [LaneRNG(key).integers(0, 100) for _ in range(3)]
        assert first[0] == first[1] == first[2]

    def test_single_arg_form_and_errors(self):
        rng = LaneRNG(lane_key(3))
        v = rng.integers(10)
        assert 0 <= v < 10
        with pytest.raises(ValueError):
            rng.integers(5, 10)
        with pytest.raises(ValueError):
            rng.integers(0, 0)

    def test_spawn_lane_rngs(self):
        states = spawn_generator_states(np.random.default_rng(2), 4)
        rngs = spawn_lane_rngs(states)
        assert len(rngs) == 4
        assert all(r.counter == 0 for r in rngs)
        assert len({r.key for r in rngs}) == 4
