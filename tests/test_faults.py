"""Tests for the deterministic fault-injection framework (repro/faults)."""

import threading

import pytest

from repro.errors import (
    ConfigError,
    DeviceFault,
    DeviceOOM,
    EnumerationBudgetExceeded,
    KernelTimeout,
    SimulationError,
)
from repro.faults import (
    FAULT_KIND_ORDER,
    FaultInjector,
    FaultKind,
    FaultPlan,
    fault_kind,
    maybe_injector,
)


class TestFaultPlan:
    def test_deterministic_per_launch(self):
        plan = FaultPlan.uniform(seed=42, rate=0.5)
        first = [plan.faults_for(i).kinds for i in range(200)]
        second = [plan.faults_for(i).kinds for i in range(200)]
        assert first == second

    def test_independent_of_query_order(self):
        plan = FaultPlan.uniform(seed=42, rate=0.5)
        forward = {i: plan.faults_for(i).kinds for i in range(50)}
        backward = {i: plan.faults_for(i).kinds for i in reversed(range(50))}
        assert forward == backward

    def test_two_plans_same_seed_agree(self):
        a = FaultPlan.uniform(seed=7, rate=0.3)
        b = FaultPlan.uniform(seed=7, rate=0.3)
        assert all(
            a.faults_for(i) == b.faults_for(i) for i in range(100)
        )

    def test_different_seeds_differ(self):
        a = FaultPlan.uniform(seed=1, rate=0.5)
        b = FaultPlan.uniform(seed=2, rate=0.5)
        assert any(
            a.faults_for(i).kinds != b.faults_for(i).kinds for i in range(100)
        )

    def test_zero_rate_never_faults(self):
        plan = FaultPlan.uniform(seed=3, rate=0.0)
        assert not any(plan.faults_for(i) for i in range(500))

    def test_rate_one_always_faults(self):
        plan = FaultPlan.from_rates(seed=3, corruption=1.0)
        assert all(plan.faults_for(i).corrupts for i in range(100))

    def test_empirical_rate_tracks_expected(self):
        plan = FaultPlan.uniform(seed=11, rate=0.2)
        n = 4000
        hits = sum(bool(plan.faults_for(i)) for i in range(n))
        expected = plan.expected_fault_rate()
        assert hits / n == pytest.approx(expected, abs=0.03)

    def test_overrides_replace_draws(self):
        plan = FaultPlan(
            seed=0,
            overrides={3: (FaultKind.STALL,), 5: (FaultKind.OOM,)},
        )
        assert not plan.faults_for(0)
        faults = plan.faults_for(3)
        assert faults.stalls and faults.stall_factor == plan.stall_factor
        oom = plan.faults_for(5)
        assert oom.oom and oom.oom_pressure_bytes == plan.oom_pressure_bytes

    def test_stall_and_pressure_only_when_kind_fires(self):
        plan = FaultPlan(seed=0, overrides={0: (FaultKind.CORRUPTION,)})
        faults = plan.faults_for(0)
        assert faults.corrupts
        assert faults.stall_factor == 1.0
        assert faults.oom_pressure_bytes == 0

    def test_validation(self):
        with pytest.raises(ConfigError):
            FaultPlan(rates={FaultKind.STALL: 1.5})
        with pytest.raises(ConfigError):
            FaultPlan(stall_factor=0.5)
        with pytest.raises(ConfigError):
            FaultPlan.uniform(seed=0, rate=2.0)

    def test_uniform_splits_rate_across_kinds(self):
        plan = FaultPlan.uniform(seed=0, rate=0.2)
        assert all(
            plan.rates[kind] == pytest.approx(0.05)
            for kind in FAULT_KIND_ORDER
        )
        assert plan.expected_fault_rate() <= 0.2


class TestFaultInjector:
    def test_counts_and_indices(self):
        plan = FaultPlan(
            seed=0, overrides={1: (FaultKind.CORRUPTION, FaultKind.STALL)}
        )
        injector = FaultInjector(plan)
        assert injector.peek_index() == 0
        assert not injector.next_launch()
        assert injector.next_launch().corrupts
        stats = injector.stats()
        assert stats["n_launches"] == 2
        assert stats["n_faulted_launches"] == 1
        assert stats["injected"]["corruption"] == 1
        assert stats["injected"]["stall"] == 1

    def test_thread_safe_monotone_indices(self):
        injector = FaultInjector(FaultPlan.uniform(seed=5, rate=0.3))
        seen = []
        lock = threading.Lock()

        def worker():
            for _ in range(100):
                faults = injector.next_launch()
                with lock:
                    seen.append(faults.launch_index)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(seen) == list(range(400))
        assert injector.n_launches == 400

    def test_maybe_injector(self):
        assert maybe_injector(None) is None
        assert isinstance(maybe_injector(FaultPlan()), FaultInjector)


class TestFaultKindLabel:
    def test_typed_device_faults(self):
        assert fault_kind(DeviceFault("x", kind="corruption")) == "corruption"
        assert fault_kind(KernelTimeout(10.0, 5.0)) == "timeout"
        assert fault_kind(DeviceOOM(100, 10)) == "oom"

    def test_simulation_error_is_desync(self):
        assert fault_kind(SimulationError("lanes disagree")) == "desync"

    def test_generic_fallback(self):
        assert fault_kind(DeviceFault()) == "fault"


class TestErrorHierarchy:
    def test_device_faults_under_repro_error(self):
        from repro.errors import ReproError

        for error in (DeviceFault(), KernelTimeout(2.0, 1.0), DeviceOOM(2, 1)):
            assert isinstance(error, ReproError)
            assert isinstance(error, DeviceFault)

    def test_oom_carries_sizes(self):
        error = DeviceOOM(1024, 512)
        assert error.requested_bytes == 1024
        assert error.budget_bytes == 512

    def test_timeout_carries_times(self):
        error = KernelTimeout(12.5, 5.0)
        assert error.kernel_ms == 12.5
        assert error.watchdog_ms == 5.0

    def test_enumeration_budget_partial_count(self):
        error = EnumerationBudgetExceeded(17)
        assert error.partial_count == 17
