"""Tests for the RSV abstraction, WanderJoin, and Alley kernels."""

import numpy as np
import pytest

from repro.candidate.candidate_graph import build_candidate_graph
from repro.enumeration.backtracking import count_embeddings
from repro.estimators.alley import AlleyEstimator
from repro.estimators.base import SampleState, StepContext, get_min_candidate
from repro.estimators.wanderjoin import WanderJoinEstimator
from repro.graph.datasets import load_dataset
from repro.query.extract import extract_query
from repro.query.matching_order import quicksi_order


class TestSampleState:
    def test_fresh(self):
        s = SampleState.fresh(4)
        assert s.depth == 0 and s.prob == 1.0
        assert s.instance == [-1, -1, -1, -1]

    def test_push_updates(self):
        s = SampleState.fresh(3)
        s.push(7, 0.5)
        s.push(9, 0.25)
        assert s.depth == 2
        assert s.instance[:2] == [7, 9]
        assert s.prob == pytest.approx(0.125)
        assert s.ht_value == pytest.approx(8.0)

    def test_contains_checks_prefix_only(self):
        s = SampleState.fresh(3)
        s.instance = [5, 9, 9]
        s.depth = 2
        assert s.contains(5) and s.contains(9)
        s.depth = 1
        assert not s.contains(9)

    def test_copy_is_deep_enough(self):
        s = SampleState.fresh(2)
        c = s.copy()
        c.push(3, 0.5)
        assert s.depth == 0 and s.instance[0] == -1

    def test_zero_prob_rejected(self):
        s = SampleState.fresh(1)
        s.prob = 0.0
        with pytest.raises(ValueError):
            s.ht_value


class TestGetMinCandidate:
    def test_depth_zero_returns_global(self, paper_workload):
        _, query, cg, order = paper_workload
        state = SampleState.fresh(query.n_vertices)
        cand, eid, span, others = get_min_candidate(
            StepContext(cg, order, 0), state
        )
        assert eid == -1 and others == []
        assert list(cand) == list(cg.global_candidates[order.order[0]])

    def test_picks_smallest_backward(self, paper_workload):
        _, query, cg, order = paper_workload
        rng = np.random.default_rng(0)
        est = WanderJoinEstimator()
        state = SampleState.fresh(query.n_vertices)
        # Walk two steps, then verify min property at the third.
        for d in range(2):
            out = est.run_iteration(StepContext(cg, order, d), state, rng)
            if not out.valid:
                return  # unlucky walk; property tested statistically below
        ctx = StepContext(cg, order, 2)
        cand, eid, span, others = get_min_candidate(ctx, state)
        u = order.order[2]
        for j in order.backward[2]:
            u_b = order.order[j]
            other_eid = cg.edge_id(u_b, u)
            local = cg.local_candidates(other_eid, state.instance[j])
            assert len(cand) <= len(local)


class TestWanderJoin:
    def test_refine_is_passthrough(self, paper_workload, rng):
        _, query, cg, order = paper_workload
        est = WanderJoinEstimator()
        state = SampleState.fresh(query.n_vertices)
        cand = np.array([1, 2, 3])
        refined, probes = est.refine(
            StepContext(cg, order, 1), state, cand, []
        )
        assert refined is cand and probes == 0

    def test_validate_rejects_duplicates(self, paper_workload, rng):
        _, query, cg, order = paper_workload
        est = WanderJoinEstimator()
        state = SampleState.fresh(query.n_vertices)
        state.push(0, 1.0)
        valid, _ = est.validate(
            StepContext(cg, order, 1), state, 0, 0.5, []
        )
        assert not valid

    def test_probability_is_product_of_set_sizes(self, paper_workload, rng):
        _, query, cg, order = paper_workload
        est = WanderJoinEstimator()
        for _ in range(50):
            state, ok = est.run_sample(cg, order, rng)
            if ok:
                # prob is a product of 1/|C_i| factors: positive, <= 1.
                assert 0 < state.prob <= 1.0
                assert state.depth == query.n_vertices
                # The completed instance is injective.
                assert len(set(state.instance)) == query.n_vertices


class TestAlley:
    def test_refined_vertices_extend_validly(self, paper_workload, rng):
        """Alley's guarantee: every refined candidate yields a valid partial
        instance (modulo the duplicate check)."""
        graph, query, cg, order = paper_workload
        est = AlleyEstimator()
        for _ in range(30):
            state = SampleState.fresh(query.n_vertices)
            for d in range(query.n_vertices):
                ctx = StepContext(cg, order, d)
                cand, eid, span, others = get_min_candidate(ctx, state)
                refined, _ = est.refine(ctx, state, cand, others)
                u = order.order[d]
                for v in refined:
                    for j in order.backward[d]:
                        assert graph.has_edge(state.instance[j], int(v))
                out = est.run_iteration(ctx, state, rng)
                if not out.valid:
                    break

    def test_refine_subset_of_cand(self, paper_workload, rng):
        _, query, cg, order = paper_workload
        est = AlleyEstimator()
        state = SampleState.fresh(query.n_vertices)
        for d in range(query.n_vertices):
            ctx = StepContext(cg, order, d)
            cand, eid, span, others = get_min_candidate(ctx, state)
            refined, _ = est.refine(ctx, state, cand, others)
            assert set(int(x) for x in refined) <= set(int(x) for x in cand)
            out = est.run_iteration(ctx, state, rng)
            if not out.valid:
                break

    def test_candidate_passes_agrees_with_refine(self, paper_workload, rng):
        _, query, cg, order = paper_workload
        est = AlleyEstimator()
        state = SampleState.fresh(query.n_vertices)
        est.run_iteration(StepContext(cg, order, 0), state, rng)
        est.run_iteration(StepContext(cg, order, 1), state, rng)
        if state.depth < 2:
            pytest.skip("walk died early for this seed")
        ctx = StepContext(cg, order, 2)
        cand, eid, span, others = get_min_candidate(ctx, state)
        refined, _ = est.refine(ctx, state, cand, others)
        refined_set = set(int(x) for x in refined)
        for v in cand:
            ok, _ = est.candidate_passes(ctx, state, int(v), others)
            assert ok == (int(v) in refined_set)


class TestEstimatorsAgree:
    def test_wj_and_alley_same_support(self, rng):
        """Both estimators must converge to the true count; Alley with
        smaller variance (its sample space is a subset, Fig. 3)."""
        graph = load_dataset("yeast")
        query = extract_query(graph, 5, rng=8, query_type="dense")
        cg = build_candidate_graph(graph, query)
        order = quicksi_order(query, graph)
        truth = count_embeddings(cg, order).count
        assert truth > 0

        from repro.estimators.cpu_runner import CPUSamplingRunner

        wj = CPUSamplingRunner(WanderJoinEstimator()).run(cg, order, 20000, rng=1)
        al = CPUSamplingRunner(AlleyEstimator()).run(cg, order, 20000, rng=1)
        assert wj.estimate == pytest.approx(truth, rel=0.35)
        assert al.estimate == pytest.approx(truth, rel=0.35)
        # Alley's refinement yields at least as many valid samples.
        assert al.n_valid >= wj.n_valid
