"""Circuit-breaker state machine tests (repro/serve/breaker.py)."""

import pytest

from repro.errors import ServiceError
from repro.serve.breaker import BreakerPolicy, BreakerState, CircuitBreaker


def make_breaker(threshold=3, cooldown=10.0):
    return CircuitBreaker(
        BreakerPolicy(failure_threshold=threshold, cooldown_ms=cooldown)
    )


class TestClosedState:
    def test_starts_closed_and_allows(self):
        breaker = make_breaker()
        assert breaker.state(0.0) is BreakerState.CLOSED
        assert breaker.allow(0.0)

    def test_below_threshold_stays_closed(self):
        breaker = make_breaker(threshold=3)
        assert not breaker.record_failure(0.0)
        assert not breaker.record_failure(1.0)
        assert breaker.state(2.0) is BreakerState.CLOSED
        assert breaker.allow(2.0)

    def test_success_resets_failure_streak(self):
        breaker = make_breaker(threshold=3)
        breaker.record_failure(0.0)
        breaker.record_failure(1.0)
        breaker.record_success(2.0)
        assert breaker.consecutive_failures == 0
        breaker.record_failure(3.0)
        breaker.record_failure(4.0)
        assert breaker.state(5.0) is BreakerState.CLOSED  # streak restarted


class TestTripping:
    def test_k_consecutive_failures_trip(self):
        breaker = make_breaker(threshold=3)
        breaker.record_failure(0.0)
        breaker.record_failure(1.0)
        assert breaker.record_failure(2.0)  # the tripping failure
        assert breaker.state(2.0) is BreakerState.OPEN
        assert not breaker.allow(2.0)
        assert breaker.n_trips == 1

    def test_straggler_success_while_open_is_ignored(self):
        # A round launched before the trip may still report success while
        # the breaker is OPEN; only the cooldown may reopen the path.
        breaker = make_breaker(threshold=1, cooldown=10.0)
        breaker.record_failure(0.0)
        breaker.record_success(1.0)
        assert breaker.state(1.0) is BreakerState.OPEN
        assert breaker.n_recoveries == 0
        assert breaker.state(10.0) is BreakerState.HALF_OPEN

    def test_open_blocks_until_cooldown(self):
        breaker = make_breaker(threshold=1, cooldown=10.0)
        breaker.record_failure(0.0)
        assert not breaker.allow(5.0)
        assert breaker.state(9.999) is BreakerState.OPEN


class TestHalfOpen:
    def test_cooldown_elapses_to_half_open(self):
        breaker = make_breaker(threshold=1, cooldown=10.0)
        breaker.record_failure(0.0)
        assert breaker.state(10.0) is BreakerState.HALF_OPEN

    def test_single_probe_allowed(self):
        breaker = make_breaker(threshold=1, cooldown=10.0)
        breaker.record_failure(0.0)
        assert breaker.allow(10.0)  # the probe
        assert not breaker.allow(10.0)  # probe outstanding: no second
        assert breaker.n_probes == 1

    def test_probe_success_closes(self):
        breaker = make_breaker(threshold=1, cooldown=10.0)
        breaker.record_failure(0.0)
        assert breaker.allow(10.0)
        breaker.record_success(11.0)
        assert breaker.state(11.0) is BreakerState.CLOSED
        assert breaker.n_recoveries == 1
        assert breaker.allow(11.0)

    def test_probe_failure_reopens(self):
        breaker = make_breaker(threshold=1, cooldown=10.0)
        breaker.record_failure(0.0)
        assert breaker.allow(10.0)
        assert breaker.record_failure(11.0)  # failed probe = a trip
        assert breaker.state(11.0) is BreakerState.OPEN
        assert breaker.n_trips == 2
        # A fresh cooldown starts from the re-trip.
        assert breaker.state(20.999) is BreakerState.OPEN
        assert breaker.state(21.0) is BreakerState.HALF_OPEN


class TestSnapshotAndValidation:
    def test_snapshot_fields(self):
        breaker = make_breaker(threshold=1)
        breaker.record_failure(0.0)
        snap = breaker.snapshot(0.0)
        assert snap["state"] == "open"
        assert snap["n_trips"] == 1
        assert snap["consecutive_failures"] == 1

    def test_policy_validation(self):
        with pytest.raises(ServiceError):
            BreakerPolicy(failure_threshold=0)
        with pytest.raises(ServiceError):
            BreakerPolicy(cooldown_ms=-1.0)
