"""Tests for the trawling strategy (Alg. 4) and Theorem 3 unbiasedness."""

import numpy as np
import pytest

from repro.bench.workloads import build_workload
from repro.candidate.candidate_graph import build_candidate_graph
from repro.core.trawling import (
    MIN_TRAWL_DEPTH,
    TrawlingEstimator,
    select_trawl_depth,
    trawl_depth_distribution,
)
from repro.enumeration.backtracking import count_embeddings
from repro.errors import ConfigError
from repro.estimators.alley import AlleyEstimator
from repro.estimators.wanderjoin import WanderJoinEstimator
from repro.graph.datasets import load_dataset
from repro.metrics.qerror import q_error
from repro.query.extract import extract_query
from repro.query.matching_order import quicksi_order


class TestDepthSelection:
    def test_distribution_geometric(self):
        dist = trawl_depth_distribution(6)
        assert set(dist) == {3, 4, 5, 6}
        # P(d=j) proportional to 2^-j.
        assert dist[3] == pytest.approx(2 * dist[4])
        assert dist[4] == pytest.approx(2 * dist[5])
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_small_queries_degenerate(self):
        assert trawl_depth_distribution(3) == {3: 1.0}
        assert trawl_depth_distribution(2) == {2: 1.0}

    def test_select_respects_support(self):
        rng = np.random.default_rng(0)
        draws = [select_trawl_depth(8, rng) for _ in range(500)]
        assert min(draws) >= MIN_TRAWL_DEPTH
        assert max(draws) <= 8
        # Depth 3 should be drawn most often (heaviest weight).
        counts = np.bincount(draws, minlength=9)
        assert counts[3] == counts[3:9].max()


class TestTrawlTasks:
    def test_sample_task_valid_prefix(self):
        w = build_workload("yeast", 8, "dense", 0)
        trawler = TrawlingEstimator(AlleyEstimator())
        rng = np.random.default_rng(4)
        for _ in range(20):
            task = trawler.sample_task(w.cg, w.order, rng, depth=3)
            if task is None:
                continue
            assert len(task.prefix) == 3
            assert task.ht_value > 0
            # The prefix is a genuine partial instance: extensions countable.
            trawler.enumerate_task(w.cg, w.order, task)
            assert task.completed
            assert task.extension_count >= 0

    def test_estimate_value_requires_enumeration(self):
        from repro.core.trawling import TrawlTask

        task = TrawlTask(prefix=(1, 2, 3), depth=3, ht_value=8.0)
        with pytest.raises(ConfigError):
            task.estimate_value
        task.extension_count = 5
        assert task.estimate_value == 40.0

    def test_budget_truncation_marks_incomplete(self):
        w = build_workload("eu2005", 16, "dense", 0)
        trawler = TrawlingEstimator(AlleyEstimator())
        rng = np.random.default_rng(1)
        task = None
        for _ in range(200):
            task = trawler.sample_task(w.cg, w.order, rng, depth=3)
            if task is not None:
                break
        assert task is not None
        trawler.enumerate_task(w.cg, w.order, task, max_nodes=3)
        assert not task.completed


class TestTheorem3Unbiasedness:
    def test_trawling_matches_truth_small(self):
        """E[T] = exact count: on a small workload the trawling estimate
        converges to the enumeration ground truth."""
        graph = load_dataset("yeast")
        query = extract_query(graph, 5, rng=8, query_type="dense")
        cg = build_candidate_graph(graph, query)
        order = quicksi_order(query, graph)
        truth = count_embeddings(cg, order).count
        trawler = TrawlingEstimator(WanderJoinEstimator())
        result = trawler.run(cg, order, 3000, rng=2)
        assert result.n_samples == 3000
        assert result.estimate == pytest.approx(truth, rel=0.3)

    def test_trawling_beats_sampling_on_wordnet(self):
        """Fig. 15: where pure sampling collapses toward 0, trawling
        recovers orders of magnitude of q-error.  Individual seeds are
        noisy (a lucky walk can rescue sampling, an unlucky trawl can
        miss), so medians over seeds are compared — the figure's per-query
        scatter shows exactly this spread."""
        import statistics

        from repro.estimators.cpu_runner import CPUSamplingRunner

        w = build_workload("wordnet", 16, "dense", 0)
        truth = w.ground_truth()
        assert truth.complete and truth.count > 1000

        q_sampling, q_trawling = [], []
        for seed in (1, 2, 3):
            sampling = CPUSamplingRunner(AlleyEstimator()).run(
                w.cg, w.order, 3000, rng=seed
            )
            trawling = TrawlingEstimator(AlleyEstimator()).run(
                w.cg, w.order, 400, rng=seed
            )
            q_sampling.append(q_error(truth.count, sampling.estimate))
            q_trawling.append(q_error(truth.count, trawling.estimate))
        med_sampling = statistics.median(q_sampling)
        med_trawling = statistics.median(q_trawling)
        assert med_sampling > 100  # severe underestimation
        assert med_trawling < med_sampling / 10  # orders of improvement

    def test_depth_histogram_recorded(self):
        w = build_workload("yeast", 8, "dense", 0)
        result = TrawlingEstimator(AlleyEstimator()).run(w.cg, w.order, 200, rng=1)
        assert sum(result.depth_histogram.values()) == 200
        assert all(MIN_TRAWL_DEPTH <= d <= 8 for d in result.depth_histogram)

    def test_zero_samples_rejected(self):
        w = build_workload("yeast", 8, "dense", 0)
        with pytest.raises(ConfigError):
            TrawlingEstimator(AlleyEstimator()).run(w.cg, w.order, 0)
