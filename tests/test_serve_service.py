"""End-to-end tests for the estimation service (repro/serve/service.py)."""

import math

import pytest

from repro.errors import ServiceError
from repro.graph.datasets import load_dataset
from repro.query.extract import extract_query
from repro.query.query_graph import QueryGraph
from repro.serve import (
    EstimateRequest,
    EstimationService,
    ServiceConfig,
)
from repro.serve.controller import BudgetPolicy
from repro.utils.rng import derive_seed

#: A loose-CI, small-budget profile so service tests stay fast.
FAST_POLICY = BudgetPolicy(min_round_samples=128, max_round_samples=2048)


@pytest.fixture(scope="module")
def graphs():
    return {name: load_dataset(name) for name in ("yeast", "hprd")}


@pytest.fixture(scope="module")
def mixed_requests(graphs):
    """32+ mixed-size requests over 8 distinct queries on 2 datasets."""
    templates = []
    for i in range(8):
        name = "yeast" if i % 2 == 0 else "hprd"
        graph = graphs[name]
        k = 4 if i < 5 else 8
        query = extract_query(
            graph, k, rng=derive_seed(77, name, k, i), name=f"{name}-{k}-{i}"
        )
        templates.append((graph, query))

    def build(n):
        return [
            EstimateRequest(
                graph=templates[i % len(templates)][0],
                query=templates[i % len(templates)][1],
                target_rel_ci=0.25,
                max_samples=4096,
            )
            for i in range(n)
        ]

    return build


def make_service(**overrides):
    overrides.setdefault("policy", FAST_POLICY)
    return EstimationService(ServiceConfig(**overrides))


class TestConcurrentWave:
    def test_32_concurrent_mixed_requests(self, mixed_requests):
        service = make_service()
        requests = mixed_requests(32)
        responses = service.estimate_many(requests)

        assert len(responses) == 32
        assert len({r.request_id for r in responses}) == 32
        for r in responses:
            assert r.estimate >= 0 and math.isfinite(r.estimate)
            assert r.n_samples > 0
            assert r.stop_reason in ("converged", "budget", "deadline")
            assert r.latency_ms >= 0
            assert r.latency_ms == pytest.approx(
                r.queue_ms + r.build_ms + r.service_ms, abs=1e-9
            )

        snap = service.metrics_snapshot()
        assert snap["n_submitted"] == snap["n_completed"] == 32
        assert snap["n_failed"] == 0
        assert snap["queue_depth"] == 0
        # 32 requests batched into far fewer device launches.
        assert snap["mean_batch_size"] > 1.0

    def test_cache_hits_lower_latency(self, mixed_requests):
        service = make_service()
        responses = service.estimate_many(mixed_requests(32))
        hits = [r for r in responses if r.cache_hit]
        misses = [r for r in responses if not r.cache_hit]
        assert len(misses) == 8  # one build per distinct query
        assert len(hits) == 24
        assert all(r.build_ms == 0.0 for r in hits)
        assert all(r.build_ms > 0.0 for r in misses)
        mean = lambda xs: sum(xs) / len(xs)  # noqa: E731
        assert mean([r.latency_ms for r in hits]) < mean(
            [r.latency_ms for r in misses]
        )
        assert service.metrics_snapshot()["cache"]["hit_rate"] == 24 / 32

    def test_cache_disabled_rebuilds_every_request(self, mixed_requests):
        service = make_service(cache_bytes=0)
        responses = service.estimate_many(mixed_requests(8))
        assert all(not r.cache_hit for r in responses)
        assert all(r.build_ms > 0 for r in responses)
        assert service.metrics_snapshot()["cache"] == {"enabled": False}

    def test_deterministic_across_services(self, mixed_requests):
        a = make_service().estimate_many(mixed_requests(8))
        b = make_service().estimate_many(mixed_requests(8))
        assert [r.estimate for r in a] == [r.estimate for r in b]
        assert [r.latency_ms for r in a] == [r.latency_ms for r in b]


class TestQoS:
    def test_deadline_degrades_instead_of_failing(self, graphs):
        graph = graphs["yeast"]
        # k=8 dense rng=1 has invalid samples, so its CI never reaches the
        # (unreachable) target and the deadline is what stops it.
        query = extract_query(graph, 8, rng=1, query_type="dense")
        request = EstimateRequest(
            graph=graph,
            query=query,
            target_rel_ci=1e-4,  # unreachable
            deadline_ms=0.05,
            max_samples=10**9,
        )
        response = make_service().estimate(request)
        assert response.degraded
        assert response.stop_reason == "deadline"
        assert response.n_samples > 0  # best-effort, never empty
        assert math.isfinite(response.estimate)

    def test_budget_backstop_degrades(self, graphs):
        graph = graphs["yeast"]
        # Same noisy query: the CI stays positive, so the 512-sample cap is
        # what stops it.
        query = extract_query(graph, 8, rng=1, query_type="dense")
        request = EstimateRequest(
            graph=graph, query=query, target_rel_ci=1e-6, max_samples=512
        )
        response = make_service().estimate(request)
        assert response.degraded and response.stop_reason == "budget"
        assert response.n_samples >= 512

    def test_empty_candidate_graph_short_circuits(self, graphs):
        graph = graphs["yeast"]
        # A label no data vertex carries: the filters prove count == 0.
        query = QueryGraph.from_edges(
            [10**9, 10**9], [(0, 1)], name="impossible"
        )
        response = make_service().estimate(
            EstimateRequest(graph=graph, query=query)
        )
        assert response.estimate == 0.0
        assert response.stop_reason == "empty"
        assert not response.degraded
        assert response.n_samples == 0 and response.n_rounds == 0

    def test_invalid_request_rejected_at_construction(self, graphs):
        graph = graphs["yeast"]
        query = QueryGraph.from_edges([0, 0], [(0, 1)])
        with pytest.raises(ServiceError):
            EstimateRequest(graph=graph, query=query, target_rel_ci=0.0)
        with pytest.raises(ServiceError):
            EstimateRequest(graph=graph, query=query, deadline_ms=-1.0)
        with pytest.raises(ServiceError):
            EstimateRequest(graph=graph, query=query, max_samples=0)
        with pytest.raises(ServiceError):
            EstimateRequest(graph=graph, query=query, estimator="magic")


class TestBackgroundWorker:
    def test_submit_and_block_on_tickets(self, mixed_requests):
        service = make_service()
        service.start()
        try:
            tickets = [service.submit(r) for r in mixed_requests(12)]
            responses = [t.result(timeout=120.0) for t in tickets]
        finally:
            service.stop()
        assert len(responses) == 12
        assert all(r.n_samples > 0 for r in responses)
        assert service.metrics_snapshot()["n_completed"] == 12

    def test_double_start_rejected(self):
        service = make_service()
        service.start()
        try:
            with pytest.raises(ServiceError):
                service.start()
        finally:
            service.stop()

    def test_stop_is_idempotent(self):
        service = make_service()
        service.stop()  # never started: no-op
        service.start()
        service.stop()
        service.stop()


class TestMetrics:
    def test_snapshot_schema(self, mixed_requests):
        service = make_service()
        service.estimate_many(mixed_requests(8))
        snap = service.metrics_snapshot()
        for key in (
            "n_submitted", "n_completed", "n_degraded", "n_failed",
            "n_batches", "mean_batch_size", "max_queue_depth",
            "total_samples", "samples_per_second", "busy_ms",
            "latency_ms", "queue_wait_ms", "queue_depth", "clock_ms",
            "cache",
        ):
            assert key in snap, key
        for pct in ("p50", "p95", "p99", "mean", "count", "max"):
            assert pct in snap["latency_ms"], pct
        assert snap["latency_ms"]["count"] == 8
        assert snap["samples_per_second"] > 0
        assert snap["clock_ms"] > 0

    def test_clock_advances_only_with_batches(self):
        service = make_service()
        assert service.clock_ms == 0.0
        assert service.drain() == 0  # nothing queued, nothing happens
        assert service.clock_ms == 0.0
