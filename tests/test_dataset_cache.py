"""On-disk dataset cache behaviour: keying, round-trip, corrupt eviction.

The cache must be *safe to distrust*: any unreadable or stale entry is
evicted and the graph regenerated — a damaged cache can cost time, never
correctness.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.graph import datasets
from repro.graph.datasets import (
    DATASET_PROFILES,
    _cache_key,
    _cache_load,
    _cache_path,
    _cache_store,
    load_dataset,
)


@pytest.fixture()
def cache_dir(tmp_path, monkeypatch):
    """Point the dataset cache at a fresh directory and drop the in-memory
    memo so every test exercises the disk path."""
    monkeypatch.delenv("REPRO_DATASET_CACHE", raising=False)
    monkeypatch.setenv("REPRO_DATASET_CACHE_DIR", str(tmp_path))
    datasets._load_dataset_cached.cache_clear()
    yield tmp_path
    datasets._load_dataset_cached.cache_clear()


class TestCacheKey:
    def test_key_covers_every_profile_field(self):
        profile = DATASET_PROFILES["yeast"]
        base = _cache_key(profile)
        for f in dataclasses.fields(profile):
            value = getattr(profile, f.name)
            if isinstance(value, str):
                bumped = value + "x"
            elif isinstance(value, int):
                bumped = value + 1
            else:
                bumped = float(value) + 0.125
            changed = dataclasses.replace(profile, **{f.name: bumped})
            assert _cache_key(changed) != base, (
                f"changing {f.name!r} must change the cache key"
            )

    def test_key_is_stable_for_equal_profiles(self):
        profile = DATASET_PROFILES["yeast"]
        assert _cache_key(profile) == _cache_key(dataclasses.replace(profile))


class TestCacheRoundTrip:
    def test_store_then_load_is_identical(self, cache_dir):
        graph = load_dataset("yeast")  # generates and stores
        path = _cache_path(DATASET_PROFILES["yeast"])
        assert path is not None and path.is_file()
        cached = _cache_load(path, "yeast")
        assert cached is not None
        np.testing.assert_array_equal(cached.offsets, graph.offsets)
        np.testing.assert_array_equal(cached.neighbors, graph.neighbors)
        np.testing.assert_array_equal(cached.labels, graph.labels)

    def test_cache_hit_skips_generation(self, cache_dir, monkeypatch):
        load_dataset("yeast")
        datasets._load_dataset_cached.cache_clear()

        def _boom(profile):  # pragma: no cover - must not run
            raise AssertionError("cache hit should not regenerate")

        monkeypatch.setattr(datasets, "_generate", _boom)
        graph = load_dataset("yeast")
        assert graph.n_vertices == DATASET_PROFILES["yeast"].n_vertices


class TestCorruptEntries:
    @pytest.mark.parametrize(
        "payload",
        [b"", b"not a zip at all", b"PK\x03\x04 truncated npz header"],
        ids=["empty", "garbage", "truncated"],
    )
    def test_corrupt_file_is_evicted_and_rebuilt(self, cache_dir, payload):
        profile = DATASET_PROFILES["yeast"]
        path = _cache_path(profile)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(payload)
        graph = load_dataset("yeast")  # must not raise
        assert graph.n_vertices == profile.n_vertices
        # The corrupt entry was replaced by a loadable one.
        assert _cache_load(path, "yeast") is not None

    def test_missing_member_is_treated_as_corrupt(self, cache_dir):
        profile = DATASET_PROFILES["yeast"]
        path = _cache_path(profile)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "wb") as fh:
            np.savez(fh, offsets=np.array([0, 0]))  # neighbors/labels absent
        assert _cache_load(path, "yeast") is None
        assert not path.is_file()  # evicted
        assert load_dataset("yeast").n_vertices == profile.n_vertices

    def test_store_is_atomic_no_tmp_left_behind(self, cache_dir):
        profile = DATASET_PROFILES["yeast"]
        graph = load_dataset("yeast")
        _cache_store(_cache_path(profile), graph)
        leftovers = [p for p in cache_dir.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []


class TestCacheDisable:
    def test_disabled_cache_writes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_DATASET_CACHE", "0")
        monkeypatch.setenv("REPRO_DATASET_CACHE_DIR", str(tmp_path))
        datasets._load_dataset_cached.cache_clear()
        try:
            graph = load_dataset("yeast")
            assert graph.n_vertices == DATASET_PROFILES["yeast"].n_vertices
            assert list(tmp_path.iterdir()) == []
        finally:
            datasets._load_dataset_cached.cache_clear()
