"""Service-level resilience: fault survival, fallback, breaker, worker
crash recovery, and the stranded-ticket guarantee."""

import time

import pytest

from repro.core.engine import RetryPolicy
from repro.errors import DeviceFault, ServiceError, ServiceTimeout
from repro.faults import FaultKind, FaultPlan
from repro.graph.datasets import load_dataset
from repro.query.extract import extract_query
from repro.serve import (
    BreakerPolicy,
    EstimateRequest,
    EstimationService,
    ServiceConfig,
)
from repro.serve.controller import REASON_FALLBACK, BudgetPolicy
from repro.utils.rng import derive_seed

FAST_POLICY = BudgetPolicy(min_round_samples=128, max_round_samples=1024)


@pytest.fixture(scope="module")
def graph():
    return load_dataset("yeast")


@pytest.fixture(scope="module")
def make_requests(graph):
    def build(n, max_samples=4096, target_rel_ci=0.3):
        return [
            EstimateRequest(
                graph=graph,
                query=extract_query(
                    graph, 4, rng=derive_seed(9, i % 4), name=f"sf-q{i % 4}"
                ),
                target_rel_ci=target_rel_ci,
                max_samples=max_samples,
                request_id=f"sf-{i}",
            )
            for i in range(n)
        ]

    return build


def make_service(**overrides):
    overrides.setdefault("policy", FAST_POLICY)
    return EstimationService(ServiceConfig(**overrides))


class TestFaultSurvival:
    def test_all_answered_under_faults(self, make_requests):
        service = make_service(
            faults=FaultPlan.uniform(seed=7, rate=0.25),
            watchdog_ms=5.0,
            memory_budget_bytes=8 << 30,
            retry=RetryPolicy(max_retries=3),
        )
        responses = service.estimate_many(make_requests(12))
        assert len(responses) == 12
        assert all(r.estimate >= 0 for r in responses)
        snap = service.metrics_snapshot()
        assert snap["n_failed"] == 0
        assert snap["queue_depth"] == 0  # nothing stranded

    def test_fault_metrics_recorded(self, make_requests):
        service = make_service(
            faults=FaultPlan.from_rates(seed=3, corruption=0.5),
            retry=RetryPolicy(max_retries=4),
        )
        service.estimate_many(make_requests(8))
        res = service.metrics_snapshot()["resilience"]
        assert res["n_faults"] > 0
        assert res["n_retries"] > 0
        assert res["faults_by_kind"].get("corruption", 0) > 0
        assert sum(res["faults_by_kind"].values()) == res["n_faults"]

    def test_injector_stats_surface(self, make_requests):
        service = make_service(faults=FaultPlan.uniform(seed=1, rate=0.2))
        service.estimate_many(make_requests(4))
        injected = service.metrics_snapshot()["faults_injected"]
        assert injected["n_launches"] > 0

    def test_healthy_service_reports_no_faults(self, make_requests):
        service = make_service()
        service.estimate_many(make_requests(4))
        res = service.metrics_snapshot()["resilience"]
        assert res["n_faults"] == res["n_round_failures"] == 0
        assert service.metrics_snapshot()["faults_injected"] == {
            "enabled": False
        }


class TestCPUFallback:
    def test_always_failing_device_degrades_to_cpu(self, make_requests):
        service = make_service(
            faults=FaultPlan(rates={FaultKind.CORRUPTION: 1.0}),
            retry=RetryPolicy(max_retries=1),
        )
        responses = service.estimate_many(make_requests(4))
        for r in responses:
            assert r.degraded
            assert r.stop_reason == REASON_FALLBACK
            assert r.extras["fallback"] is True
            assert r.n_samples > 0 and r.estimate >= 0
        res = service.metrics_snapshot()["resilience"]
        assert res["n_fallbacks"] == 4

    def test_fallback_disabled_fails_tickets(self, make_requests):
        service = make_service(
            faults=FaultPlan(rates={FaultKind.CORRUPTION: 1.0}),
            retry=None,
            cpu_fallback=False,
        )
        ticket = service.submit(make_requests(1)[0])
        service.drain()
        with pytest.raises(DeviceFault):
            ticket.result(timeout=0)
        assert service.metrics_snapshot()["n_failed"] == 1

    def test_fallback_combines_committed_device_rounds(self, make_requests):
        # First launch healthy, everything after corrupts; a tight CI
        # target forces a second round, which fails — the fallback answer
        # must include the committed first round's samples.
        plan = FaultPlan(
            rates={FaultKind.CORRUPTION: 1.0},
            overrides={0: ()},
        )
        service = make_service(faults=plan, retry=None)
        [response] = service.estimate_many(
            make_requests(1, max_samples=65_536, target_rel_ci=0.01)
        )
        assert response.stop_reason == REASON_FALLBACK
        assert response.n_samples > response.extras["fallback_samples"]


class TestCircuitBreaker:
    def test_consecutive_failures_trip_breaker(self, make_requests):
        # Launches 0 and 1 corrupt (tripping the breaker mid-batch); the
        # surviving requests need further rounds, which the now-open
        # breaker rejects pre-enqueue — they degrade to the CPU fallback.
        plan = FaultPlan(overrides={0: (FaultKind.CORRUPTION,),
                                    1: (FaultKind.CORRUPTION,)})
        service = make_service(
            faults=plan,
            retry=None,
            breaker=BreakerPolicy(failure_threshold=2, cooldown_ms=1e9),
        )
        service.estimate_many(
            make_requests(6, max_samples=65_536, target_rel_ci=0.01)
        )
        snap = service.metrics_snapshot()
        assert snap["resilience"]["n_breaker_trips"] >= 1
        assert snap["breakers"]["alley"]["state"] == "open"
        # Once open, later rounds are rejected pre-launch and degrade.
        assert snap["resilience"]["n_breaker_rejections"] > 0
        assert snap["n_completed"] == 6  # all still answered via fallback

    def test_breaker_recovers_after_cooldown(self, make_requests):
        # Wave 1 trips the breaker (launch 0 corrupts, threshold 1);
        # with a zero cooldown the breaker is HALF_OPEN by wave 2, whose
        # first round is the probe — it succeeds and closes the breaker.
        plan = FaultPlan(overrides={0: (FaultKind.CORRUPTION,)})
        service = make_service(
            faults=plan,
            retry=None,
            breaker=BreakerPolicy(failure_threshold=1, cooldown_ms=0.0),
        )
        requests = make_requests(2)
        service.estimate_many(requests[:1])  # fails -> trip + fallback
        service.estimate_many(requests[1:])  # half-open probe succeeds
        breaker = service.metrics_snapshot()["breakers"]["alley"]
        assert breaker["n_trips"] >= 1
        assert breaker["n_recoveries"] >= 1
        assert breaker["state"] == "closed"


class TestWorkerCrashRecovery:
    def test_worker_survives_crash_and_fails_inflight(self, make_requests):
        service = make_service()
        original = service.scheduler.execute
        crashes = {"n": 0}

        def crash_once(batch):
            if crashes["n"] == 0:
                crashes["n"] += 1
                raise RuntimeError("injected scheduler crash")
            return original(batch)

        service.scheduler.execute = crash_once
        service.start()
        try:
            first = service.submit(make_requests(1)[0])
            with pytest.raises(RuntimeError, match="injected scheduler crash"):
                first.result(timeout=10.0)
            # The worker must still be alive and serving.
            second = service.submit(make_requests(2)[1])
            response = second.result(timeout=10.0)
            assert response.estimate >= 0
        finally:
            service.stop()
        snap = service.metrics_snapshot()
        assert snap["resilience"]["n_worker_crashes"] == 1
        assert snap["n_failed"] >= 1

    def test_inline_drain_still_propagates(self, make_requests):
        service = make_service()

        def always_crash(batch):
            raise RuntimeError("inline crash")

        service.scheduler.execute = always_crash
        service.submit(make_requests(1)[0])
        with pytest.raises(RuntimeError, match="inline crash"):
            service.drain()


class TestTicketTimeout:
    def test_timeout_raises_service_timeout(self, make_requests):
        service = make_service()
        ticket = service.submit(make_requests(1)[0])  # never drained
        start = time.monotonic()
        with pytest.raises(ServiceTimeout):
            ticket.result(timeout=0.01)
        assert time.monotonic() - start < 5.0
        assert isinstance(ServiceTimeout("x"), ServiceError)

    def test_done_ticket_ignores_timeout(self, make_requests):
        service = make_service()
        ticket = service.submit(make_requests(1)[0])
        service.drain()
        assert ticket.result(timeout=0).estimate >= 0


class TestDeterministicChaos:
    def test_same_seed_same_outcome(self, make_requests):
        def run():
            service = make_service(
                faults=FaultPlan.uniform(seed=13, rate=0.3),
                watchdog_ms=5.0,
                retry=RetryPolicy(max_retries=2),
            )
            responses = service.estimate_many(make_requests(8))
            res = service.metrics_snapshot()["resilience"]
            return (
                [r.estimate for r in responses],
                res["n_faults"],
                res["faults_by_kind"],
            )

        assert run() == run()
