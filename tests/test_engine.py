"""Tests for the GSWORDEngine: configs, sync modes, accounting, and the
qualitative performance shapes the paper's Figures 5/12 rely on."""

from dataclasses import replace

import pytest

from repro.bench.workloads import LIGHT_FILTER, build_workload
from repro.candidate.candidate_graph import build_candidate_graph
from repro.core.config import EngineConfig, SyncMode
from repro.core.engine import GSWORDEngine
from repro.enumeration.backtracking import count_embeddings
from repro.errors import ConfigError
from repro.estimators.alley import AlleyEstimator
from repro.estimators.wanderjoin import WanderJoinEstimator
from repro.gpu.costmodel import GPUSpec
from repro.gpu.profiler import KernelProfile
from repro.graph.datasets import load_dataset
from repro.query.extract import extract_query
from repro.query.matching_order import quicksi_order


@pytest.fixture(scope="module")
def small_workload():
    graph = load_dataset("yeast")
    query = extract_query(graph, 5, rng=8, query_type="dense")
    cg = build_candidate_graph(graph, query)
    order = quicksi_order(query, graph)
    truth = count_embeddings(cg, order).count
    return cg, order, truth


@pytest.fixture(scope="module")
def heavy_workload():
    w = build_workload("eu2005", 16, "dense", 0)
    return w.cg, w.order


class TestConfig:
    def test_presets(self):
        assert EngineConfig.gpu_baseline().sync_mode is SyncMode.ITERATION
        assert EngineConfig.gsword().inheritance
        assert EngineConfig.gsword().streaming
        o1 = EngineConfig.inheritance_only()
        assert o1.inheritance and not o1.streaming
        ss = EngineConfig.sample_sync_baseline()
        assert ss.sync_mode is SyncMode.SAMPLE and not ss.inheritance

    def test_inheritance_requires_sample_sync(self):
        with pytest.raises(ConfigError):
            EngineConfig(sync_mode=SyncMode.ITERATION, inheritance=True)

    def test_string_sync_mode_coerced(self):
        cfg = EngineConfig(sync_mode="iteration", inheritance=False)
        assert cfg.sync_mode is SyncMode.ITERATION

    def test_bad_values_rejected(self):
        with pytest.raises(ConfigError):
            EngineConfig(tasks_per_warp=0)
        with pytest.raises(ConfigError):
            EngineConfig(max_depth=0)

    def test_with_max_depth(self):
        cfg = EngineConfig.gsword().with_max_depth(3)
        assert cfg.max_depth == 3 and cfg.inheritance


class TestEngineBasics:
    def test_zero_samples_rejected(self, small_workload):
        cg, order, _ = small_workload
        engine = GSWORDEngine(WanderJoinEstimator())
        with pytest.raises(ConfigError):
            engine.run(cg, order, 0)

    def test_deterministic_given_seed(self, small_workload):
        cg, order, _ = small_workload
        engine = GSWORDEngine(AlleyEstimator(), EngineConfig.gsword())
        a = engine.run(cg, order, 512, rng=42)
        b = engine.run(cg, order, 512, rng=42)
        assert a.estimate == b.estimate
        assert a.n_samples == b.n_samples
        assert a.profile.total_cycles == b.profile.total_cycles

    def test_collected_at_least_requested(self, small_workload):
        cg, order, _ = small_workload
        engine = GSWORDEngine(WanderJoinEstimator(), EngineConfig.gsword())
        result = engine.run(cg, order, 1000, rng=0)
        assert result.n_samples >= 1000
        assert result.n_root_samples <= result.n_samples

    def test_no_inheritance_roots_equal_collected(self, small_workload):
        cg, order, _ = small_workload
        for cfg in (EngineConfig.gpu_baseline(), EngineConfig.sample_sync_baseline()):
            result = GSWORDEngine(WanderJoinEstimator(), cfg).run(
                cg, order, 1000, rng=0
            )
            assert result.n_samples == result.n_root_samples == 1000

    def test_estimates_converge_all_modes(self, small_workload):
        cg, order, truth = small_workload
        for cfg in (
            EngineConfig.gpu_baseline(),
            EngineConfig.sample_sync_baseline(),
            EngineConfig.inheritance_only(),
            EngineConfig.gsword(),
        ):
            for est in (WanderJoinEstimator(), AlleyEstimator()):
                result = GSWORDEngine(est, cfg).run(cg, order, 8192, rng=9)
                assert result.estimate == pytest.approx(truth, rel=0.5), (
                    cfg,
                    est.name,
                )

    def test_max_depth_collects_partial_states(self, small_workload):
        cg, order, _ = small_workload
        cfg = EngineConfig.gsword(max_depth=3)
        engine = GSWORDEngine(AlleyEstimator(), cfg)
        result = engine.run(cg, order, 512, rng=1, collect_states=True)
        assert result.collected, "valid partial samples should be collected"
        for instance, prob in result.collected:
            assert len(instance) == 3
            assert 0 < prob
            assert len(set(instance)) == 3  # injective prefix

    def test_simulated_ms_positive_and_scales(self, small_workload):
        cg, order, _ = small_workload
        engine = GSWORDEngine(AlleyEstimator(), EngineConfig.gsword())
        result = engine.run(cg, order, 2048, rng=2)
        small = result.simulated_ms_at(10**4)
        large = result.simulated_ms_at(10**6)
        assert 0 < small < large
        with pytest.raises(ConfigError):
            result.simulated_ms_at(0)

    def test_samples_per_second_positive(self, small_workload):
        cg, order, _ = small_workload
        result = GSWORDEngine(WanderJoinEstimator()).run(cg, order, 512, rng=0)
        assert result.samples_per_second() > 0

    def test_samples_per_second_rejects_zero_duration(self, small_workload):
        cg, order, _ = small_workload
        result = GSWORDEngine(WanderJoinEstimator()).run(cg, order, 512, rng=0)
        broken = GPUSpec(launch_overhead_ms=0.0)
        zeroed = replace(result, spec=broken, profile=KernelProfile(),
                         longest_warp_cycles=0.0)
        with pytest.raises(ConfigError):
            zeroed.samples_per_second()


class TestEngineSession:
    """Round-capable incremental execution (the serving layer's entry)."""

    @pytest.fixture(scope="class")
    def noisy_workload(self):
        """A workload whose HT values actually vary (invalid samples exist)
        — the zero-variance ``small_workload`` can't exercise CI shrinkage
        or distinguish RNG streams."""
        graph = load_dataset("yeast")
        query = extract_query(graph, 8, rng=1, query_type="dense")
        cg = build_candidate_graph(graph, query)
        order = quicksi_order(query, graph)
        return cg, order

    def test_rounds_accumulate(self, small_workload):
        cg, order, _ = small_workload
        engine = GSWORDEngine(AlleyEstimator(), EngineConfig.gsword())
        session = engine.session(cg, order, rng=5)
        r1 = session.run_round(512)
        r2 = session.run_round(512)
        total = session.result()
        assert session.n_rounds == 2
        assert total.n_samples == r1.n_samples + r2.n_samples
        assert total.n_warps == r1.n_warps + r2.n_warps
        assert total.profile.total_cycles == pytest.approx(
            r1.profile.total_cycles + r2.profile.total_cycles
        )
        assert total.accumulator.n == r1.accumulator.n + r2.accumulator.n

    def test_session_deterministic_given_seed(self, small_workload):
        cg, order, _ = small_workload
        engine = GSWORDEngine(AlleyEstimator(), EngineConfig.gsword())
        a = engine.session(cg, order, rng=11)
        b = engine.session(cg, order, rng=11)
        for _ in range(3):
            a.run_round(256)
            b.run_round(256)
        assert a.result().estimate == b.result().estimate
        assert a.result().profile.total_cycles == b.result().profile.total_cycles

    def test_rounds_use_distinct_streams(self, noisy_workload):
        """Consecutive rounds must not replay the same RNG stream."""
        cg, order = noisy_workload
        engine = GSWORDEngine(AlleyEstimator(), EngineConfig.gsword())
        session = engine.session(cg, order, rng=3)
        r1 = session.run_round(1024)
        r2 = session.run_round(1024)
        assert r1.accumulator._m2 != r2.accumulator._m2

    def test_ci_tightens_over_rounds(self, noisy_workload):
        cg, order = noisy_workload
        engine = GSWORDEngine(AlleyEstimator(), EngineConfig.gsword())
        session = engine.session(cg, order, rng=4)
        session.run_round(512)
        early = session.result()
        early_se = early.accumulator.std_error / max(early.estimate, 1e-12)
        for _ in range(6):
            session.run_round(2048)
        late = session.result()
        late_se = late.accumulator.std_error / max(late.estimate, 1e-12)
        assert late_se < early_se

    def test_result_before_rounds_raises(self, small_workload):
        cg, order, _ = small_workload
        engine = GSWORDEngine(AlleyEstimator(), EngineConfig.gsword())
        with pytest.raises(ConfigError):
            engine.session(cg, order, rng=0).result()

    def test_matches_monolithic_run_estimate_scale(self, small_workload):
        """A sessioned run converges to the same truth as a monolithic run."""
        cg, order, truth = small_workload
        engine = GSWORDEngine(AlleyEstimator(), EngineConfig.gsword())
        session = engine.session(cg, order, rng=9)
        for _ in range(8):
            session.run_round(1024)
        assert session.result().estimate == pytest.approx(truth, rel=0.5)


class TestPerformanceShapes:
    """The qualitative claims of §3.2 and §6.3 on a refine-heavy workload."""

    @pytest.fixture(scope="class")
    def timings(self, heavy_workload):
        cg, order = heavy_workload
        out = {}
        for label, cfg, est in [
            ("WJ-O0", EngineConfig.gpu_baseline(), WanderJoinEstimator()),
            ("WJ-ss", EngineConfig.sample_sync_baseline(), WanderJoinEstimator()),
            ("WJ-O1", EngineConfig.inheritance_only(), WanderJoinEstimator()),
            ("WJ-O2", EngineConfig.gsword(), WanderJoinEstimator()),
            ("AL-O0", EngineConfig.gpu_baseline(), AlleyEstimator()),
            ("AL-ss", EngineConfig.sample_sync_baseline(), AlleyEstimator()),
            ("AL-O1", EngineConfig.inheritance_only(), AlleyEstimator()),
            ("AL-O2", EngineConfig.gsword(), AlleyEstimator()),
        ]:
            result = GSWORDEngine(est, cfg).run(cg, order, 2048, rng=7)
            out[label] = (result.simulated_ms_at(10**6), result)
        return out

    def test_iteration_sync_slower_than_sample_sync(self, timings):
        """§3.2: iteration synchronisation loses despite better utilisation."""
        for prefix in ("WJ", "AL"):
            assert timings[f"{prefix}-O0"][0] > timings[f"{prefix}-ss"][0]

    def test_iteration_sync_has_more_stall_long(self, timings):
        """Figure 5: StallLong higher for iteration sync, StallWait lower."""
        for prefix in ("WJ", "AL"):
            it = timings[f"{prefix}-O0"][1].profile.stall_summary()
            ss = timings[f"{prefix}-ss"][1].profile.stall_summary()
            assert it["stall_long_per_iter"] > ss["stall_long_per_iter"]
            assert it["stall_wait_per_iter"] < ss["stall_wait_per_iter"]

    def test_inheritance_speeds_up_both(self, timings):
        """Figure 12, O0 -> O1."""
        assert timings["WJ-O1"][0] < timings["WJ-O0"][0]
        assert timings["AL-O1"][0] < timings["AL-O0"][0]

    def test_streaming_helps_alley_not_wj(self, timings):
        """Figure 12, O1 -> O2: AL improves; WJ unchanged (no refine)."""
        assert timings["AL-O2"][0] < timings["AL-O1"][0]
        assert timings["WJ-O2"][0] == pytest.approx(timings["WJ-O1"][0], rel=1e-6)

    def test_inheritance_improves_efficiency(self, timings):
        ss = timings["WJ-ss"][1].profile.warp.warp_efficiency
        o1 = timings["WJ-O1"][1].profile.warp.warp_efficiency
        assert o1 > ss

    def test_alley_slower_than_wj_on_gpu_baseline(self, timings):
        """Table 2: the refine stage makes GPU-AL much slower than GPU-WJ."""
        assert timings["AL-O0"][0] > 2 * timings["WJ-O0"][0]
