"""Tests for the CPU-side branching-Alley extension (§2.2 Remark)."""

import pytest

from repro.bench.workloads import build_workload
from repro.candidate.candidate_graph import build_candidate_graph
from repro.enumeration.backtracking import count_embeddings
from repro.errors import ConfigError
from repro.estimators.branching import BranchingAlleyRunner
from repro.graph.datasets import load_dataset
from repro.query.extract import extract_query
from repro.query.matching_order import quicksi_order


@pytest.fixture(scope="module")
def small_workload():
    graph = load_dataset("yeast")
    query = extract_query(graph, 5, rng=8, query_type="dense")
    cg = build_candidate_graph(graph, query)
    order = quicksi_order(query, graph)
    truth = count_embeddings(cg, order).count
    return cg, order, truth


class TestBranchingAlley:
    def test_bad_factor_rejected(self):
        with pytest.raises(ConfigError):
            BranchingAlleyRunner(branching_factor=0)

    def test_zero_samples_rejected(self, small_workload):
        cg, order, _ = small_workload
        with pytest.raises(ConfigError):
            BranchingAlleyRunner().run(cg, order, 0)

    def test_unbiased_at_b1(self, small_workload):
        """b=1 degenerates to plain Alley; the estimate converges to truth."""
        cg, order, truth = small_workload
        result = BranchingAlleyRunner(branching_factor=1).run(
            cg, order, 8000, rng=3
        )
        assert result.estimate == pytest.approx(truth, rel=0.35)
        assert result.n_paths == result.n_samples  # no branching, one path each

    def test_unbiased_at_b4(self, small_workload):
        """Theorem-style check: the recursive branching estimator is
        unbiased for b > 1 too."""
        cg, order, truth = small_workload
        result = BranchingAlleyRunner(branching_factor=4).run(
            cg, order, 6000, rng=5
        )
        assert result.estimate == pytest.approx(truth, rel=0.35)

    def test_branching_explores_more_paths(self):
        """On a refine-heavy workload (large candidate sets), branching
        amortises refinement across shared prefixes: more paths per root."""
        w = build_workload("eu2005", 8, "dense", 0)
        plain = BranchingAlleyRunner(branching_factor=1).run(
            w.cg, w.order, 300, rng=1
        )
        branched = BranchingAlleyRunner(branching_factor=4).run(
            w.cg, w.order, 300, rng=1
        )
        assert branched.paths_per_sample > plain.paths_per_sample
        # ... and the cost per path is lower than b=1's (shared refinement).
        assert (
            branched.total_cycles / branched.n_paths
            < plain.total_cycles / plain.n_paths
        )

    def test_small_sets_do_not_branch(self, small_workload):
        """The original rule: only branch on refined sets larger than 8."""
        cg, order, _ = small_workload
        # yeast q5 candidate sets are tiny: no branching should occur.
        result = BranchingAlleyRunner(branching_factor=8).run(
            cg, order, 500, rng=2
        )
        assert result.n_paths == result.n_samples

    def test_deterministic(self, small_workload):
        cg, order, _ = small_workload
        a = BranchingAlleyRunner(branching_factor=3).run(cg, order, 400, rng=9)
        b = BranchingAlleyRunner(branching_factor=3).run(cg, order, 400, rng=9)
        assert a.estimate == b.estimate and a.n_paths == b.n_paths
