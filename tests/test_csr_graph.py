"""Unit + property tests for the CSR graph substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph.builder import GraphBuilder, from_edge_list
from repro.graph.csr import CSRGraph, empty_graph


class TestConstruction:
    def test_empty_graph(self):
        g = empty_graph(3)
        assert g.n_vertices == 3
        assert g.n_edges == 0
        assert g.avg_degree == 0.0
        g.validate()

    def test_single_edge(self):
        g = from_edge_list([(0, 1)], labels=[5, 7])
        assert g.n_edges == 1
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)
        assert g.label(0) == 5 and g.label(1) == 7

    def test_duplicate_edges_collapse(self):
        g = from_edge_list([(0, 1), (1, 0), (0, 1)], n_vertices=2)
        assert g.n_edges == 1

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            from_edge_list([(1, 1)], n_vertices=2)

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(GraphError):
            from_edge_list([(0, 5)], n_vertices=2)

    def test_labels_length_mismatch(self):
        with pytest.raises(GraphError):
            GraphBuilder(3, labels=[0, 1])

    def test_negative_labels_rejected(self):
        with pytest.raises(GraphError):
            GraphBuilder(2, labels=[0, -1])

    def test_n_vertices_inferred(self):
        g = from_edge_list([(0, 4)])
        assert g.n_vertices == 5


class TestAccessors:
    def test_degrees(self, triangle_graph):
        assert triangle_graph.degree(1) == 3
        assert list(triangle_graph.degrees) == [2, 3, 3, 2]
        assert triangle_graph.max_degree == 3

    def test_neighbors_sorted(self, triangle_graph):
        for v in range(triangle_graph.n_vertices):
            adj = triangle_graph.neighbors_of(v)
            assert list(adj) == sorted(adj)

    def test_has_edge_negative(self, triangle_graph):
        assert not triangle_graph.has_edge(0, 3)

    def test_edges_iteration_unique(self, triangle_graph):
        edges = list(triangle_graph.edges())
        assert len(edges) == triangle_graph.n_edges
        assert all(u < v for u, v in edges)

    def test_vertices_with_label(self):
        g = from_edge_list([(0, 1), (1, 2)], labels=[1, 0, 1])
        assert list(g.vertices_with_label(1)) == [0, 2]
        assert list(g.vertices_with_label(0)) == [1]
        # Cached second call returns the same result.
        assert list(g.vertices_with_label(1)) == [0, 2]

    def test_label_histogram(self):
        g = from_edge_list([(0, 1)], labels=[0, 2])
        assert list(g.label_histogram()) == [1, 0, 1]

    def test_is_connected(self, triangle_graph):
        assert triangle_graph.is_connected()
        g = from_edge_list([(0, 1)], n_vertices=3)
        assert not g.is_connected()

    def test_induced_subgraph(self, triangle_graph):
        sub = triangle_graph.subgraph_induced([1, 2, 3])
        assert sub.n_vertices == 3
        assert sub.n_edges == 3  # the (1,2,3) triangle
        sub.validate()

    def test_induced_subgraph_duplicates_rejected(self, triangle_graph):
        with pytest.raises(GraphError):
            triangle_graph.subgraph_induced([1, 1])


class TestValidation:
    def test_validate_catches_asymmetry(self):
        g = CSRGraph(
            offsets=np.array([0, 1, 1], dtype=np.int64),
            neighbors=np.array([1], dtype=np.int32),
            labels=np.zeros(2, dtype=np.int32),
        )
        with pytest.raises(GraphError):
            g.validate()

    def test_bad_offsets_rejected(self):
        with pytest.raises(GraphError):
            CSRGraph(
                offsets=np.array([0, 2, 1], dtype=np.int64),
                neighbors=np.array([1, 0], dtype=np.int32),
                labels=np.zeros(2, dtype=np.int32),
            )

    def test_offsets_must_close(self):
        with pytest.raises(GraphError):
            CSRGraph(
                offsets=np.array([0, 1, 1], dtype=np.int64),
                neighbors=np.array([1, 0], dtype=np.int32),
                labels=np.zeros(2, dtype=np.int32),
            )


@st.composite
def edge_lists(draw):
    n = draw(st.integers(min_value=2, max_value=20))
    n_edges = draw(st.integers(min_value=0, max_value=40))
    edges = [
        (draw(st.integers(0, n - 1)), draw(st.integers(0, n - 1)))
        for _ in range(n_edges)
    ]
    edges = [(u, v) for u, v in edges if u != v]
    return n, edges


class TestProperties:
    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_builder_invariants(self, data):
        n, edges = data
        g = from_edge_list(edges, n_vertices=n)
        g.validate()
        # Edge membership matches input set.
        expected = {(min(u, v), max(u, v)) for u, v in edges}
        assert g.n_edges == len(expected)
        for u, v in expected:
            assert g.has_edge(u, v) and g.has_edge(v, u)
        # Handshake lemma.
        assert int(g.degrees.sum()) == 2 * g.n_edges

    @given(edge_lists())
    @settings(max_examples=30, deadline=None)
    def test_has_edge_agrees_with_adjacency(self, data):
        n, edges = data
        g = from_edge_list(edges, n_vertices=n)
        for u in range(n):
            nbrs = set(int(w) for w in g.neighbors_of(u))
            for v in range(n):
                assert g.has_edge(u, v) == (v in nbrs)
