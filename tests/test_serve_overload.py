"""Service-level overload behaviour: load shedding with retry hints,
the shutdown race, cancellation releasing admission capacity, thread
safety under concurrent submitters, hedged-round bit-identity, and
deadline propagation (repro/serve/service.py + repro/serve/admission.py)."""

import threading

import numpy as np
import pytest

from repro.candidate.candidate_graph import build_candidate_graph
from repro.core.config import EngineConfig
from repro.core.engine import GSWORDEngine
from repro.errors import (
    Overloaded,
    RequestCancelled,
    ServiceClosed,
)
from repro.estimators.alley import AlleyEstimator
from repro.faults import FaultInjector, FaultKind, FaultPlan
from repro.gpu.costmodel import DEFAULT_GPU
from repro.gpu.device import DeviceModel
from repro.graph.datasets import load_dataset
from repro.query.extract import extract_query
from repro.query.matching_order import quicksi_order
from repro.serve import (
    AdmissionPolicy,
    EstimateRequest,
    EstimationService,
    HedgePolicy,
    ServiceConfig,
    TenantQuota,
)
from repro.serve.controller import AdaptiveBudgetController, BudgetPolicy
from repro.utils.rng import derive_seed

#: A loose-CI, small-budget profile so service tests stay fast.
FAST_POLICY = BudgetPolicy(min_round_samples=128, max_round_samples=2048)


@pytest.fixture(scope="module")
def yeast():
    return load_dataset("yeast")


@pytest.fixture(scope="module")
def query(yeast):
    return extract_query(yeast, 4, rng=derive_seed(55, "overload"), name="ov-q4")


def make_request(yeast, query, *, tenant="default", deadline_ms=None):
    return EstimateRequest(
        graph=yeast,
        query=query,
        target_rel_ci=0.30,
        max_samples=2048,
        tenant=tenant,
        deadline_ms=deadline_ms,
    )


def make_service(**overrides):
    overrides.setdefault("policy", FAST_POLICY)
    return EstimationService(ServiceConfig(**overrides))


# ---------------------------------------------------------------------------
# Load shedding
# ---------------------------------------------------------------------------
class TestShedding:
    def test_queue_full_shed(self, yeast, query):
        service = make_service(admission=AdmissionPolicy(max_pending=2))
        service.submit(make_request(yeast, query))
        service.submit(make_request(yeast, query))
        with pytest.raises(Overloaded) as exc:
            service.submit(make_request(yeast, query))
        assert exc.value.reason == "queue_full"
        assert exc.value.retry_after_ms > 0
        snap = service.metrics_snapshot()
        assert snap["admission"]["n_shed"] == 1
        assert snap["admission"]["shed_by_reason"] == {"queue_full": 1}
        # The two admitted requests still complete.
        service.drain()
        assert service.metrics_snapshot()["n_completed"] == 2

    def test_quota_shed_is_per_tenant(self, yeast, query):
        service = make_service(
            admission=AdmissionPolicy(
                max_pending=None,
                quotas={"hot": TenantQuota(rate_per_s=1.0, burst=2.0)},
            )
        )
        service.submit(make_request(yeast, query, tenant="hot"))
        service.submit(make_request(yeast, query, tenant="hot"))
        with pytest.raises(Overloaded) as exc:
            service.submit(make_request(yeast, query, tenant="hot"))
        assert exc.value.reason == "quota"
        assert exc.value.tenant == "hot"
        assert exc.value.retry_after_ms > 0
        # Unmetered tenants are untouched by the hot tenant's exhaustion.
        for _ in range(4):
            service.submit(make_request(yeast, query, tenant="cold"))
        service.drain()
        assert service.metrics_snapshot()["n_completed"] == 6

    def test_quota_refills_on_simulated_clock(self, yeast, query):
        service = make_service(
            admission=AdmissionPolicy(
                max_pending=None,
                quotas={"hot": TenantQuota(rate_per_s=1000.0, burst=1.0)},
            )
        )
        service.submit(make_request(yeast, query, tenant="hot"))
        with pytest.raises(Overloaded) as exc:
            service.submit(make_request(yeast, query, tenant="hot"))
        # One token per simulated ms: advancing the clock re-admits.
        service.advance_clock(service.clock_ms + exc.value.retry_after_ms)
        service.submit(make_request(yeast, query, tenant="hot"))
        service.drain()
        assert service.metrics_snapshot()["n_completed"] == 2

    def test_deadline_shed(self, yeast, query):
        service = make_service(admission=AdmissionPolicy(max_pending=None))
        # Establish a service-time EWMA, then pile up a backlog.
        service.estimate(make_request(yeast, query))
        for _ in range(6):
            service.submit(make_request(yeast, query))
        with pytest.raises(Overloaded) as exc:
            service.submit(make_request(yeast, query, deadline_ms=1e-6))
        assert exc.value.reason == "deadline"
        assert exc.value.retry_after_ms > 0
        # The same submission without a deadline is admitted.
        service.submit(make_request(yeast, query))
        service.drain()
        # 1 warm-up estimate + 6 backlog + 1 deadline-free resubmission.
        assert service.metrics_snapshot()["n_completed"] == 8

    def test_no_admission_policy_means_legacy_unbounded(self, yeast, query):
        service = make_service()
        for _ in range(8):
            service.submit(make_request(yeast, query, deadline_ms=1e-6))
        service.drain()
        assert service.metrics_snapshot()["n_completed"] == 8


# ---------------------------------------------------------------------------
# Shutdown race (typed rejection, zero stranded tickets)
# ---------------------------------------------------------------------------
class TestShutdownRace:
    def test_submit_after_close_raises_service_closed(self, yeast, query):
        service = make_service()
        service.close()
        with pytest.raises(ServiceClosed):
            service.submit(make_request(yeast, query))

    def test_stop_is_restartable_close_is_terminal(self, yeast, query):
        # stop() pauses the worker but keeps the service usable (inline
        # processing still works); only close() rejects permanently.
        service = make_service()
        service.start()
        service.stop(drain=True)
        ticket = service.submit(make_request(yeast, query))
        service.drain()
        assert ticket.result().estimate >= 0
        service.close()
        with pytest.raises(ServiceClosed):
            service.submit(make_request(yeast, query))

    def test_close_with_queued_work_strands_nothing(self, yeast, query):
        service = make_service()
        tickets = [service.submit(make_request(yeast, query)) for _ in range(4)]
        service.close()
        # Every ticket is terminal: either answered before the shutdown or
        # failed with the typed ServiceClosed — never left hanging.
        for ticket in tickets:
            assert ticket.done()
            with pytest.raises(ServiceClosed):
                ticket.result(timeout=0)

    def test_estimate_many_racing_stop(self, yeast, query):
        """A submitter racing shutdown either gets answers or a typed
        rejection — no ticket waits forever (the stranded-ticket race)."""
        service = make_service()
        service.start()
        stop_gate = threading.Event()
        outcomes = []

        def submitter():
            stop_gate.wait()
            try:
                responses = service.estimate_many(
                    [make_request(yeast, query) for _ in range(3)]
                )
                outcomes.append(("ok", len(responses)))
            except ServiceClosed:
                outcomes.append(("closed", 0))

        threads = [threading.Thread(target=submitter) for _ in range(4)]
        for t in threads:
            t.start()
        stop_gate.set()
        service.stop(drain=True)
        for t in threads:
            t.join(timeout=30)
            assert not t.is_alive()
        assert len(outcomes) == 4
        for kind, n in outcomes:
            assert kind in ("ok", "closed")
            if kind == "ok":
                assert n == 3


# ---------------------------------------------------------------------------
# Cancellation
# ---------------------------------------------------------------------------
class TestCancellation:
    def test_cancel_releases_admission_slot(self, yeast, query):
        service = make_service(admission=AdmissionPolicy(max_pending=2))
        first = service.submit(make_request(yeast, query))
        service.submit(make_request(yeast, query))
        with pytest.raises(Overloaded):
            service.submit(make_request(yeast, query))
        assert first.cancel()
        # The freed slot admits the next submission immediately.
        service.submit(make_request(yeast, query))
        service.drain()
        assert service.metrics_snapshot()["n_completed"] == 2
        with pytest.raises(RequestCancelled):
            first.result(timeout=0)

    def test_cancel_is_idempotent_and_post_completion_safe(self, yeast, query):
        service = make_service()
        ticket = service.submit(make_request(yeast, query))
        assert ticket.cancel()
        assert not ticket.cancel()
        done = service.submit(make_request(yeast, query))
        service.drain()
        assert done.result().estimate >= 0
        assert not done.cancel()  # already terminal
        snap = service.metrics_snapshot()
        assert snap["admission"]["n_cancelled"] == 1
        assert snap["queue_depth"] == 0

    def test_cancelled_rounds_are_dropped_lazily(self, yeast, query):
        service = make_service()
        tickets = [service.submit(make_request(yeast, query)) for _ in range(3)]
        tickets[1].cancel()
        assert service.queue_depth() == 2
        service.drain()
        assert service.metrics_snapshot()["n_completed"] == 2
        assert tickets[0].result().estimate >= 0
        assert tickets[2].result().estimate >= 0


# ---------------------------------------------------------------------------
# Thread hammer
# ---------------------------------------------------------------------------
class TestThreadHammer:
    def test_concurrent_submitters_and_depth_probes(self, yeast, query):
        """N threads submitting M requests each against a started worker,
        with concurrent queue_depth() probes, must leave every ticket
        terminal and the queue empty."""
        n_threads, per_thread = 6, 4
        service = make_service(
            admission=AdmissionPolicy(max_pending=None)
        )
        service.start()
        results = []
        errors = []
        lock = threading.Lock()

        def submitter(idx):
            for j in range(per_thread):
                try:
                    ticket = service.submit(
                        make_request(yeast, query, tenant=f"t{idx % 3}")
                    )
                    response = ticket.result(timeout=60)
                    with lock:
                        results.append(response)
                except Exception as error:  # noqa: BLE001 - recorded and failed
                    with lock:
                        errors.append(error)

        def prober():
            for _ in range(200):
                depth = service.queue_depth()
                assert depth >= 0

        threads = [
            threading.Thread(target=submitter, args=(i,))
            for i in range(n_threads)
        ] + [threading.Thread(target=prober) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
            assert not t.is_alive()
        service.stop(drain=True)

        assert not errors
        assert len(results) == n_threads * per_thread
        assert len({r.request_id for r in results}) == len(results)
        assert service.queue_depth() == 0
        snap = service.metrics_snapshot()
        assert snap["n_completed"] == len(results)
        assert snap["n_failed"] == 0


# ---------------------------------------------------------------------------
# Hedging
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def plan_parts(yeast, query):
    cg = build_candidate_graph(yeast, query)
    order = quicksi_order(query, yeast)
    assert not cg.is_empty()
    return cg, order


def _make_engine(plan=None, n_shards=2):
    config = EngineConfig.gsword(n_shards=n_shards)
    injector = FaultInjector(plan) if plan is not None else None
    return GSWORDEngine(
        AlleyEstimator(), config, DEFAULT_GPU,
        device=DeviceModel(DEFAULT_GPU), injector=injector,
    )


class TestHedging:
    def test_hedged_rounds_bit_identical_to_unhedged(self, plan_parts):
        """Under stall faults the hedge fires and sometimes wins — and the
        committed estimates must still match unhedged execution bitwise."""
        cg, order = plan_parts
        stalls = FaultPlan(
            seed=derive_seed(9, "hedge"),
            rates={FaultKind.STALL: 0.3},
            stall_factor=24.0,
        )
        plain = _make_engine().session(cg, order, rng=7)
        durations = []
        baseline = []
        for _ in range(24):
            result = plain.run_round(192)
            durations.append(result.simulated_ms())
            baseline.append(result.estimate)
        delay = max(0.05, 1.5 * float(np.percentile(durations, 50)))

        hedged = _make_engine(stalls).session(cg, order, rng=7)
        estimates = []
        n_fired = n_won = 0
        for _ in range(24):
            report = hedged.run_round_hedged(192, hedge_delay_ms=delay)
            estimates.append(report.result.estimate)
            n_fired += int(report.hedged)
            n_won += int(report.hedge_won)
            if report.hedge_won:
                assert report.extra_ms > 0
        assert estimates == baseline
        assert n_fired > 0  # the stall plan actually exercised hedging
        assert n_won <= n_fired

    def test_hedged_counter_mode_bit_identical(self, plan_parts):
        """In counter mode both hedge attempts replay the round's lane
        keys as pure functions of the spawned child — no ``clone_state``
        needed anywhere on the path — so hedged rounds match unhedged
        execution bitwise, shard rotation and all."""
        cg, order = plan_parts

        def make():
            config = EngineConfig.gsword(n_shards=2, rng_mode="counter")
            return GSWORDEngine(
                AlleyEstimator(), config, DEFAULT_GPU,
                device=DeviceModel(DEFAULT_GPU),
            )

        plain = make().session(cg, order, rng=7)
        baseline = [plain.run_round(192).estimate for _ in range(8)]

        hedged = make().session(cg, order, rng=7)
        estimates = []
        n_fired = 0
        for _ in range(8):
            # Zero delay arms the hedge every round, so every round takes
            # the dual-launch path (rotated shard map included).
            report = hedged.run_round_hedged(192, hedge_delay_ms=0.0)
            estimates.append(report.result.estimate)
            n_fired += int(report.hedged)
        assert estimates == baseline
        assert n_fired == 8

    def test_hedge_accounting_fields(self, plan_parts):
        cg, order = plan_parts
        session = _make_engine().session(cg, order, rng=3)
        # A huge delay never fires the hedge on a healthy device.
        report = session.run_round_hedged(192, hedge_delay_ms=1e9)
        assert not report.hedged and not report.hedge_won
        assert report.extra_ms == 0.0 and report.wasted_ms == 0.0

    def test_service_level_hedging_counters(self, yeast, query):
        service = make_service(
            faults=FaultPlan(
                seed=derive_seed(11, "svc-hedge"),
                rates={FaultKind.STALL: 0.4},
                stall_factor=50.0,
            ),
            hedge=HedgePolicy(
                quantile=0.5, min_observations=4, delay_floor_ms=1e-6
            ),
        )
        # A high-variance query with a tight CI target forces multi-round
        # requests: only continuation rounds can arm hedges (the tracker
        # needs observed durations first).
        q8 = extract_query(
            yeast, 8, rng=derive_seed(55, "overload-q8"), name="ov-q8"
        )
        for _ in range(12):
            service.submit(
                EstimateRequest(
                    graph=yeast, query=q8,
                    target_rel_ci=0.02, max_samples=65536,
                )
            )
        service.drain()
        assert service.metrics_snapshot()["n_completed"] == 12
        snap = service.metrics_snapshot()
        hedging = snap["hedging"]
        assert hedging["n_hedges"] > 0
        assert 0 <= hedging["n_hedge_wins"] <= hedging["n_hedges"]
        assert hedging["hedge_wasted_ms"] >= 0.0


# ---------------------------------------------------------------------------
# Deadline propagation
# ---------------------------------------------------------------------------
class TestDeadlinePropagation:
    def test_round_watchdog_budget(self, yeast, query):
        request = make_request(yeast, query, deadline_ms=10.0)
        ctrl = AdaptiveBudgetController(request, FAST_POLICY)
        # First round is never constrained (every response carries some
        # evidence even if the deadline is already blown).
        assert ctrl.round_watchdog_ms(5.0) is None
        ctrl.n_rounds = 1
        assert ctrl.round_watchdog_ms(4.0) == pytest.approx(6.0)
        assert ctrl.round_watchdog_ms(10.0) is None  # expired -> no ceiling
        assert ctrl.round_watchdog_ms(15.0) is None
        no_deadline = AdaptiveBudgetController(
            make_request(yeast, query), FAST_POLICY
        )
        no_deadline.n_rounds = 1
        assert no_deadline.round_watchdog_ms(100.0) is None

    def test_device_watchdog_takes_stricter_ceiling(self):
        from repro.errors import KernelTimeout

        lenient = DeviceModel(DEFAULT_GPU, watchdog_ms=100.0)
        lenient.check_watchdog(50.0)  # under device-wide ceiling
        with pytest.raises(KernelTimeout):
            lenient.check_watchdog(50.0, ceiling_ms=10.0)
        unbounded = DeviceModel(DEFAULT_GPU, watchdog_ms=None)
        unbounded.check_watchdog(1e9)  # no ceiling at all
        with pytest.raises(KernelTimeout):
            unbounded.check_watchdog(1e9, ceiling_ms=10.0)

    def test_propagate_deadline_end_to_end(self, yeast, query):
        service = make_service(propagate_deadline=True)
        responses = service.estimate_many(
            [
                make_request(yeast, query, deadline_ms=deadline)
                for deadline in (None, 1000.0, 0.5)
            ]
        )
        assert len(responses) == 3
        for r in responses:
            assert r.estimate >= 0
        assert service.queue_depth() == 0
