"""Unit coverage for the cycle profiler and the wall-clock timing helpers.

``WarpProfile``/``KernelProfile`` are the accounting substrate every
simulated timing in the repository is derived from, so their arithmetic
(charging, merging, stall attribution, fault scaling) is pinned here
directly; :mod:`repro.utils.timing` is the real-time counterpart used by
the bench harness.
"""

from __future__ import annotations

import pytest

from repro.gpu.profiler import KernelProfile, WarpProfile
from repro.utils.timing import Stopwatch, format_ms


# ---------------------------------------------------------------------------
# WarpProfile
# ---------------------------------------------------------------------------
class TestWarpProfile:
    def test_charges_accumulate_into_cycle_classes(self):
        p = WarpProfile()
        p.charge_compute(10.0)
        p.charge_sync(2.5)
        p.charge_memory(8.0, segments=3, regions=1)
        assert p.compute_cycles == 10.0
        assert p.sync_cycles == 2.5
        assert p.mem_cycles == 8.0
        assert p.stall_long == 8.0  # memory cycles are StallLong
        assert p.mem_segments == 3
        assert p.region_misses == 1
        assert p.cycles == pytest.approx(20.5)

    def test_lockstep_charges_slowest_lane(self):
        p = WarpProfile()
        p.charge_lockstep([1.0, 7.0, 3.0])
        assert p.compute_cycles == 7.0
        p.charge_lockstep([])  # empty warp step is free
        assert p.compute_cycles == 7.0

    def test_idle_wait_charges_only_idle_lanes(self):
        p = WarpProfile()
        p.charge_idle_wait(iteration_cycles=4.0, busy=30, total=32)
        assert p.stall_wait == pytest.approx(8.0)  # 2 idle lanes × 4 cycles
        p.charge_idle_wait(iteration_cycles=4.0, busy=32, total=32)
        assert p.stall_wait == pytest.approx(8.0)  # full warp adds nothing

    def test_warp_efficiency(self):
        p = WarpProfile()
        assert p.warp_efficiency == 1.0  # no iterations recorded yet
        p.note_lanes(busy=24, total=32)
        p.note_lanes(busy=8, total=32)
        assert p.warp_efficiency == pytest.approx(32 / 64)
        assert p.iterations == 2

    def test_merge_sums_every_counter(self):
        a = WarpProfile()
        a.charge_compute(1.0)
        a.charge_memory(2.0, segments=1, regions=1)
        a.note_lanes(busy=16, total=32)
        b = WarpProfile()
        b.charge_compute(3.0)
        b.charge_sync(4.0)
        b.charge_idle_wait(2.0, busy=31, total=32)
        b.note_lanes(busy=32, total=32)
        merged = a.merge(b)
        assert merged is a
        assert a.compute_cycles == 4.0
        assert a.sync_cycles == 4.0
        assert a.mem_cycles == 2.0
        assert a.stall_wait == pytest.approx(2.0)
        assert a.lane_busy == 48 and a.lane_total == 64
        assert a.iterations == 2

    def test_scale_cycles_scales_time_not_work(self):
        p = WarpProfile()
        p.charge_compute(2.0)
        p.charge_memory(3.0, segments=5, regions=2)
        p.note_lanes(busy=32, total=32)
        p.scale_cycles(4.0)
        assert p.compute_cycles == 8.0
        assert p.mem_cycles == 12.0
        assert p.stall_long == 12.0
        # Work tallies are counts, not time: unscaled.
        assert p.mem_segments == 5
        assert p.region_misses == 2
        assert p.lane_busy == 32 and p.iterations == 1


# ---------------------------------------------------------------------------
# KernelProfile
# ---------------------------------------------------------------------------
class TestKernelProfile:
    def _warp(self, compute: float, busy: int = 32) -> WarpProfile:
        p = WarpProfile()
        p.charge_compute(compute)
        p.note_lanes(busy=busy, total=32)
        return p

    def test_add_warp_accumulates(self):
        k = KernelProfile()
        k.add_warp(self._warp(5.0), samples=64, valid=16)
        k.add_warp(self._warp(7.0), samples=64, valid=48)
        assert k.n_warps == 2
        assert k.n_samples == 128
        assert k.n_valid_samples == 64
        assert k.total_cycles == pytest.approx(12.0)
        assert k.valid_ratio == pytest.approx(0.5)

    def test_valid_ratio_of_empty_kernel(self):
        assert KernelProfile().valid_ratio == 0.0

    def test_merge_folds_kernels(self):
        a, b = KernelProfile(), KernelProfile()
        a.add_warp(self._warp(5.0), samples=32, valid=8)
        b.add_warp(self._warp(1.0), samples=32, valid=32)
        b.add_warp(self._warp(2.0), samples=32, valid=0)
        a.merge(b)
        assert a.n_warps == 3
        assert a.n_samples == 96
        assert a.n_valid_samples == 40
        assert a.total_cycles == pytest.approx(8.0)

    def test_scale_cycles_reaches_the_warp(self):
        k = KernelProfile()
        k.add_warp(self._warp(3.0), samples=32, valid=32)
        k.scale_cycles(2.0)
        assert k.total_cycles == pytest.approx(6.0)
        assert k.n_samples == 32  # work counts unscaled

    def test_stall_summary_normalises_per_iteration(self):
        k = KernelProfile()
        w = WarpProfile()
        w.charge_memory(10.0, segments=1, regions=0)
        w.charge_idle_wait(5.0, busy=16, total=32)
        w.note_lanes(busy=16, total=32)
        w.note_lanes(busy=32, total=32)
        k.add_warp(w, samples=64, valid=64)
        summary = k.stall_summary()
        assert summary["stall_long_per_iter"] == pytest.approx(5.0)
        assert summary["stall_wait_per_iter"] == pytest.approx(40.0)
        assert summary["warp_efficiency"] == pytest.approx(48 / 64)

    def test_stall_summary_of_empty_kernel(self):
        summary = KernelProfile().stall_summary()
        assert summary["stall_long_per_iter"] == 0.0
        assert summary["stall_wait_per_iter"] == 0.0
        assert summary["warp_efficiency"] == 1.0


# ---------------------------------------------------------------------------
# utils.timing
# ---------------------------------------------------------------------------
class TestFormatMs:
    def test_unit_selection(self):
        assert format_ms(0.5) == "500.0us"
        assert format_ms(1.0) == "1.0ms"
        assert format_ms(999.9) == "999.9ms"
        assert format_ms(1000.0) == "1.00s"
        assert format_ms(0.0) == "0.0us"

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            format_ms(-1.0)


class TestStopwatch:
    def test_lap_before_start_raises(self):
        sw = Stopwatch()
        with pytest.raises(RuntimeError):
            sw.lap("x")
        with pytest.raises(RuntimeError):
            sw.elapsed_ms()

    def test_laps_are_monotone_and_named(self):
        sw = Stopwatch().start()
        first = sw.lap("build")
        second = sw.lap("run")
        assert first >= 0.0 and second >= 0.0
        assert set(sw.laps) == {"build", "run"}
        assert sw.total_ms() == pytest.approx(first + second)

    def test_same_name_accumulates(self):
        sw = Stopwatch().start()
        a = sw.lap("round")
        b = sw.lap("round")
        assert sw.laps["round"] == pytest.approx(a + b)
        assert len(sw.laps) == 1

    def test_lap_resets_the_clock(self):
        sw = Stopwatch().start()
        sw.lap("first")
        # After a lap the reference point moves: elapsed restarts near zero
        # and is never negative (perf_counter is monotonic).
        assert 0.0 <= sw.elapsed_ms() < 1000.0

    def test_elapsed_does_not_record(self):
        sw = Stopwatch().start()
        _ = sw.elapsed_ms()
        assert sw.laps == {}
