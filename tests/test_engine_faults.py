"""Engine-session resilience: checkpoints, retries, watchdog, OOM.

The statistical centrepiece is the retry-unbiasedness property: because
every attempt draws the *next* ``SeedSequence.spawn`` child, retried
rounds are fresh i.i.d. draws and the Horvitz–Thompson estimator's mean
is unchanged by any fault/retry pattern (class docstring of
``EngineSession``).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.candidate.candidate_graph import build_candidate_graph
from repro.core.config import EngineConfig
from repro.core.engine import GSWORDEngine, RetryPolicy
from repro.errors import (
    ConfigError,
    DeviceFault,
    DeviceOOM,
    KernelTimeout,
    SimulationError,
)
from repro.estimators.alley import AlleyEstimator
from repro.faults import FaultInjector, FaultKind, FaultPlan
from repro.gpu.costmodel import DEFAULT_GPU
from repro.gpu.device import DeviceModel
from repro.graph.datasets import load_dataset
from repro.query.extract import extract_query
from repro.query.matching_order import quicksi_order


@pytest.fixture(scope="module")
def plan_parts():
    graph = load_dataset("yeast")
    query = extract_query(graph, 4, rng=1, name="faults-q4")
    cg = build_candidate_graph(graph, query)
    order = quicksi_order(query, graph)
    assert not cg.is_empty()
    return cg, order


def make_engine(plan=None, watchdog_ms=None, memory_budget_bytes=None):
    device = DeviceModel(
        DEFAULT_GPU,
        watchdog_ms=watchdog_ms,
        memory_budget_bytes=memory_budget_bytes,
    )
    injector = FaultInjector(plan) if plan is not None else None
    return GSWORDEngine(
        AlleyEstimator(), EngineConfig.gsword(), DEFAULT_GPU,
        device=device, injector=injector,
    )


class TestFaultRaising:
    def test_corruption_raises_device_fault(self, plan_parts):
        cg, order = plan_parts
        engine = make_engine(FaultPlan(overrides={0: (FaultKind.CORRUPTION,)}))
        session = engine.session(cg, order, rng=0)
        with pytest.raises(DeviceFault) as excinfo:
            session.run_round(128)
        assert excinfo.value.kind == "corruption"

    def test_desync_raises_simulation_error(self, plan_parts):
        cg, order = plan_parts
        engine = make_engine(FaultPlan(overrides={0: (FaultKind.DESYNC,)}))
        session = engine.session(cg, order, rng=0)
        with pytest.raises(SimulationError):
            session.run_round(128)

    def test_injected_oom_raises(self, plan_parts):
        cg, order = plan_parts
        engine = make_engine(
            FaultPlan(overrides={0: (FaultKind.OOM,)}),
            memory_budget_bytes=8 << 30,
        )
        session = engine.session(cg, order, rng=0)
        with pytest.raises(DeviceOOM):
            session.run_round(128)

    def test_organic_oom_from_tight_budget(self, plan_parts):
        cg, order = plan_parts
        engine = make_engine(memory_budget_bytes=16)  # nothing fits
        session = engine.session(cg, order, rng=0)
        with pytest.raises(DeviceOOM) as excinfo:
            session.run_round(128)
        assert excinfo.value.requested_bytes == cg.nbytes

    def test_stall_trips_watchdog(self, plan_parts):
        cg, order = plan_parts
        plan = FaultPlan(
            overrides={0: (FaultKind.STALL,)}, stall_factor=1e6
        )
        engine = make_engine(plan, watchdog_ms=5.0)
        session = engine.session(cg, order, rng=0)
        with pytest.raises(KernelTimeout) as excinfo:
            session.run_round(128)
        assert excinfo.value.kernel_ms > excinfo.value.watchdog_ms == 5.0

    def test_stall_without_watchdog_just_runs_slow(self, plan_parts):
        cg, order = plan_parts
        plan = FaultPlan(overrides={0: (FaultKind.STALL,)}, stall_factor=64.0)
        slow = make_engine(plan).session(cg, order, rng=0).run_round(128)
        fast = make_engine().session(cg, order, rng=0).run_round(128)
        assert slow.simulated_ms() > fast.simulated_ms()
        assert slow.estimate == fast.estimate  # timing-only fault


class TestCheckpointSemantics:
    def test_failed_round_leaves_session_untouched(self, plan_parts):
        cg, order = plan_parts
        engine = make_engine(FaultPlan(overrides={1: (FaultKind.CORRUPTION,)}))
        session = engine.session(cg, order, rng=0)
        session.run_round(128)
        before = (
            session.n_rounds, session.n_samples,
            session.accumulator.n, session.result().estimate,
        )
        with pytest.raises(DeviceFault):
            session.run_round(128)
        after = (
            session.n_rounds, session.n_samples,
            session.accumulator.n, session.result().estimate,
        )
        assert before == after

    def test_recovery_after_failed_round(self, plan_parts):
        cg, order = plan_parts
        engine = make_engine(FaultPlan(overrides={1: (FaultKind.DESYNC,)}))
        session = engine.session(cg, order, rng=0)
        session.run_round(128)
        with pytest.raises(SimulationError):
            session.run_round(128)
        session.run_round(128)  # the session is still usable
        assert session.n_rounds == 2
        assert session.n_samples >= 256


class TestResilientRetry:
    def test_retry_recovers_and_bills_faults(self, plan_parts):
        cg, order = plan_parts
        engine = make_engine(
            FaultPlan(overrides={
                0: (FaultKind.CORRUPTION,), 1: (FaultKind.DESYNC,),
            })
        )
        session = engine.session(cg, order, rng=0)
        report = session.run_round_resilient(128, RetryPolicy(max_retries=3))
        assert report.n_faults == 2
        assert report.n_retries == 2
        assert len(report.errors) == 2
        # 2 abort charges + backoff(0) + backoff(1)
        policy = RetryPolicy()
        expected = (
            2 * engine.spec.launch_overhead_ms
            + policy.backoff_for(0) + policy.backoff_for(1)
        )
        assert report.fault_ms == pytest.approx(expected)
        assert session.n_rounds == 1
        assert session.n_faults == 2 and session.n_retries == 2

    def test_retries_exhausted_raises_last_error(self, plan_parts):
        cg, order = plan_parts
        engine = make_engine(FaultPlan(rates={FaultKind.CORRUPTION: 1.0}))
        session = engine.session(cg, order, rng=0)
        with pytest.raises(DeviceFault):
            session.run_round_resilient(128, RetryPolicy(max_retries=2))
        assert session.n_faults == 3  # initial attempt + 2 retries
        assert session.n_retries == 2
        assert session.n_rounds == 0
        assert len(session.last_attempt_errors) == 3

    def test_timeout_abort_charges_watchdog(self, plan_parts):
        cg, order = plan_parts
        plan = FaultPlan(overrides={0: (FaultKind.STALL,)}, stall_factor=1e6)
        engine = make_engine(plan, watchdog_ms=7.5)
        session = engine.session(cg, order, rng=0)
        report = session.run_round_resilient(128, RetryPolicy(backoff_ms=0.0))
        assert isinstance(report.errors[0], KernelTimeout)
        assert report.fault_ms == pytest.approx(7.5)

    def test_retry_policy_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ConfigError):
            RetryPolicy(backoff_factor=0.5)


class TestRetryUnbiasedness:
    """Pre-draw faults (corruption/OOM/desync) abort before the round's
    RNG substream is drawn, so a retried round commits *bit-identical*
    data to the fault-free run — the strongest form of unbiasedness."""

    @settings(derandomize=True, max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**20))
    def test_predraw_fault_retry_is_estimate_transparent(
        self, plan_parts, seed
    ):
        cg, order = plan_parts
        healthy = make_engine().session(cg, order, rng=seed)
        healthy.run_round(64)

        faulted_engine = make_engine(
            FaultPlan(overrides={0: (FaultKind.CORRUPTION,)})
        )
        faulted = faulted_engine.session(cg, order, rng=seed)
        report = faulted.run_round_resilient(64, RetryPolicy())
        assert report.n_retries == 1
        assert faulted.result().estimate == healthy.result().estimate

    def test_timeout_retry_mean_within_ci(self, plan_parts):
        """Post-draw faults (watchdog timeouts) consume a substream, so
        retried estimates differ sample-wise — but their *mean* over many
        seeds matches the fault-free mean within pooled CI bounds."""
        cg, order = plan_parts
        n_runs, n_samples = 24, 96
        plan = FaultPlan(overrides={0: (FaultKind.STALL,)}, stall_factor=1e6)

        healthy_estimates = []
        faulted_estimates = []
        for seed in range(n_runs):
            h = make_engine().session(cg, order, rng=seed)
            h.run_round(n_samples)
            healthy_estimates.append(h.result().estimate)

            f = make_engine(
                FaultPlan(
                    overrides=plan.overrides, stall_factor=plan.stall_factor
                ),
                watchdog_ms=5.0,
            ).session(cg, order, rng=seed)
            report = f.run_round_resilient(
                n_samples, RetryPolicy(max_retries=2)
            )
            assert report.n_retries >= 1  # the fault actually fired
            faulted_estimates.append(f.result().estimate)

        h_mean = float(np.mean(healthy_estimates))
        f_mean = float(np.mean(faulted_estimates))
        pooled_se = float(np.sqrt(
            np.var(healthy_estimates, ddof=1) / n_runs
            + np.var(faulted_estimates, ddof=1) / n_runs
        ))
        assert abs(h_mean - f_mean) <= 5.0 * pooled_se + 1e-9


class TestEngineWiring:
    def test_mismatched_device_spec_rejected(self):
        from repro.gpu.costmodel import GPUSpec

        other = GPUSpec(sm_count=DEFAULT_GPU.sm_count + 1)
        with pytest.raises(ConfigError):
            GSWORDEngine(
                AlleyEstimator(), EngineConfig.gsword(), DEFAULT_GPU,
                device=DeviceModel(other),
            )

    def test_default_device_attached(self):
        engine = GSWORDEngine(AlleyEstimator())
        assert engine.device.spec == engine.spec
        assert engine.injector is None
