"""Tests pinned to the paper's worked examples and stated claims.

These go beyond unit behaviour: they check the *semantic* claims the paper
makes about its own running example (Figures 2-3, Examples 1-2) and about
the estimators' relationship (Alley's sample space is a subset of
WanderJoin's, with correspondingly higher per-sequence probabilities).
"""

import numpy as np
import pytest

from repro.candidate.candidate_graph import build_candidate_graph
from repro.estimators.alley import AlleyEstimator
from repro.estimators.base import SampleState, StepContext, get_min_candidate
from repro.estimators.wanderjoin import WanderJoinEstimator
from repro.query.matching_order import MatchingOrder


@pytest.fixture
def fig2(paper_graph, paper_query):
    """The Figure 2 workload with the paper's matching order
    φ = (u1, u2, u3, u4, u5) and label-only filtering — Example 1's
    candidate graph has C(u2) = {v3..v6}, i.e. no degree filter."""
    cg = build_candidate_graph(
        paper_graph, paper_query,
        use_nlf=False, refine_passes=0, use_degree=False,
    )
    order = MatchingOrder.from_permutation(
        paper_query, [0, 1, 2, 3, 4], method="paper"
    )
    return paper_graph, paper_query, cg, order


def _sequence_probability(estimator, cg, order, sequence):
    """Probability of sampling ``sequence`` under ``estimator``'s RSV walk,
    computed exactly from the refined-set sizes along the walk (0.0 when
    any step cannot produce the requested vertex)."""
    state = SampleState.fresh(len(order))
    prob = 1.0
    for d, v in enumerate(sequence):
        ctx = StepContext(cg, order, d)
        cand, eid, span, others = get_min_candidate(ctx, state)
        refined, _ = estimator.refine(ctx, state, cand, others)
        pool = [int(x) for x in refined]
        if v not in pool:
            return 0.0
        prob *= 1.0 / len(pool)
        valid, _ = estimator.validate(ctx, state, v, 1.0 / len(pool), others)
        if not valid:
            return 0.0
    return prob


class TestExample2SampleSpaces:
    def test_alley_probability_dominates_wanderjoin(self, fig2):
        """Example 2's core claim: for any sequence both can produce,
        Alley's sampling probability is at least WanderJoin's (its refined
        sets are subsets of the raw candidate sets)."""
        graph, query, cg, order = fig2
        wj, al = WanderJoinEstimator(), AlleyEstimator()
        # Enumerate all prefixes WanderJoin can reach, breadth-first.
        frontiers = [()]
        checked = 0
        for depth in range(query.n_vertices):
            new_frontiers = []
            for prefix in frontiers:
                state = SampleState.fresh(len(order))
                ok = True
                for d, v in enumerate(prefix):
                    ctx = StepContext(cg, order, d)
                    cand, eid, span, others = get_min_candidate(ctx, state)
                    refined, _ = wj.refine(ctx, state, cand, others)
                    valid, _ = wj.validate(ctx, state, v, 1.0, others)
                    if not valid:
                        ok = False
                        break
                if not ok:
                    continue
                ctx = StepContext(cg, order, depth)
                cand, eid, span, others = get_min_candidate(ctx, state)
                for v in cand:
                    new_frontiers.append(prefix + (int(v),))
            frontiers = new_frontiers
            for sequence in frontiers:
                p_wj = _sequence_probability(wj, cg, order, sequence)
                p_al = _sequence_probability(al, cg, order, sequence)
                if p_wj > 0 and p_al > 0:
                    assert p_al >= p_wj - 1e-12, sequence
                    checked += 1
        assert checked > 0

    def test_ht_estimate_example(self, fig2):
        """Example 2's arithmetic: one invalid and one valid sample with
        inverse probability P give the estimate (0 + 1/P) / 2."""
        graph, query, cg, order = fig2
        wj = WanderJoinEstimator()
        # Find some full valid sequence and compute its probability.
        rng = np.random.default_rng(3)
        for _ in range(500):
            state, ok = wj.run_sample(cg, order, rng)
            if ok:
                break
        assert ok, "no valid sample found on the Figure 2 workload"
        from repro.estimators.ht import HTAccumulator

        acc = HTAccumulator()
        acc.add(0.0)               # an invalid sample
        acc.add(state.ht_value)    # the valid one
        assert acc.estimate == pytest.approx(0.5 / state.prob)

    def test_example1_partial_instances(self, fig2):
        """Example 1 lists (v1,v3), (v1,v4), (v1,v5), (v2,v5), (v2,v6) as
        partial instances of (u1, u2): all must be reachable two-step walks
        in the candidate graph (ids: v1=0, v2=1, v3=2 ... v6=5)."""
        graph, query, cg, order = fig2
        wj = WanderJoinEstimator()
        for v1, v2 in [(0, 2), (0, 3), (0, 4), (1, 4), (1, 5)]:
            p = _sequence_probability(wj, cg, order, (v1, v2))
            assert p > 0, (v1, v2)
