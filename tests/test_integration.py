"""End-to-end integration tests across the whole stack.

These exercise the same flows the examples and benches use: dataset ->
query -> candidate graph -> order -> {enumeration, CPU sampling, simulated
GPU, trawling, pipeline} -> metrics, and assert the cross-cutting
consistency properties that no single-module test can see.
"""

import numpy as np
import pytest

from repro import (
    AlleyEstimator,
    CoProcessingPipeline,
    CPUSamplingRunner,
    EngineConfig,
    GSWORDEngine,
    PipelineConfig,
    TrawlingEstimator,
    WanderJoinEstimator,
    build_candidate_graph,
    count_embeddings,
    extract_query,
    load_dataset,
    q_error,
    quicksi_order,
)
from repro.bench.workloads import build_workload
from repro.enumeration.backtracking import enumerate_embeddings
from repro.estimators.base import SampleState, StepContext


@pytest.fixture(scope="module")
def yeast_flow():
    graph = load_dataset("yeast")
    query = extract_query(graph, 6, rng=13, query_type="dense")
    cg = build_candidate_graph(graph, query)
    order = quicksi_order(query, graph)
    truth = count_embeddings(cg, order)
    return graph, query, cg, order, truth


class TestEndToEndConsistency:
    def test_truth_is_complete_and_positive(self, yeast_flow):
        *_, truth = yeast_flow
        assert truth.complete and truth.count >= 1

    def test_all_estimators_agree_with_enumeration(self, yeast_flow):
        graph, query, cg, order, truth = yeast_flow
        estimates = {}
        estimates["cpu-wj"] = CPUSamplingRunner(WanderJoinEstimator()).run(
            cg, order, 15000, rng=1
        ).estimate
        estimates["cpu-al"] = CPUSamplingRunner(AlleyEstimator()).run(
            cg, order, 15000, rng=2
        ).estimate
        estimates["gpu-o0"] = GSWORDEngine(
            WanderJoinEstimator(), EngineConfig.gpu_baseline()
        ).run(cg, order, 15000, rng=3).estimate
        estimates["gpu-o2"] = GSWORDEngine(
            AlleyEstimator(), EngineConfig.gsword()
        ).run(cg, order, 15000, rng=4).estimate
        estimates["trawl"] = TrawlingEstimator(AlleyEstimator()).run(
            cg, order, 1500, rng=5
        ).estimate
        for name, estimate in estimates.items():
            assert q_error(truth.count, estimate) < 2.0, (name, estimate)

    def test_every_enumerated_embedding_is_an_embedding(self, yeast_flow):
        graph, query, cg, order, _ = yeast_flow
        for embedding in enumerate_embeddings(cg, order, limit=25):
            assert query.is_isomorphic_mapping(
                graph.labels, list(embedding), graph.has_edge
            )

    def test_valid_samples_are_embeddings(self, yeast_flow):
        """Any sample the estimators declare valid must be a real
        embedding of the query — the soundness glue between the sampling
        stack and the graph substrate."""
        graph, query, cg, order, _ = yeast_flow
        rng = np.random.default_rng(0)
        estimator = AlleyEstimator()
        checked = 0
        for _ in range(4000):
            state, ok = estimator.run_sample(cg, order, rng)
            if not ok:
                continue
            by_query_vertex = [0] * query.n_vertices
            for pos, u in enumerate(order.order):
                by_query_vertex[u] = state.instance[pos]
            assert query.is_isomorphic_mapping(
                graph.labels, by_query_vertex, graph.has_edge
            )
            checked += 1
            if checked >= 20:
                break
        assert checked > 0

    def test_sample_probabilities_match_reality(self, yeast_flow):
        """Empirical frequency of a specific full instance ~= its sample
        probability (the HT estimator's core assumption)."""
        graph, query, cg, order, _ = yeast_flow
        rng = np.random.default_rng(7)
        estimator = WanderJoinEstimator()
        seen = {}
        trials = 8000
        for _ in range(trials):
            state, ok = estimator.run_sample(cg, order, rng)
            if ok:
                key = tuple(state.instance)
                seen.setdefault(key, [0, state.prob])
                seen[key][0] += 1
        assert seen, "no valid samples at all"
        for key, (count, prob) in seen.items():
            expected = trials * prob
            if expected < 20:
                continue  # too rare to test tightly
            assert abs(count - expected) < 6 * np.sqrt(expected), key


class TestPipelineIntegration:
    def test_pipeline_on_easy_workload_matches_truth(self, yeast_flow):
        graph, query, cg, order, truth = yeast_flow
        pipeline = CoProcessingPipeline(
            AlleyEstimator(), PipelineConfig(n_batches=4, trawls_per_batch=32)
        )
        result = pipeline.run(cg, order, 8192, rng=21)
        assert q_error(truth.count, result.final_estimate) < 3.0
        # Both estimate streams individually in range too.
        assert q_error(truth.count, result.sampling_estimate) < 3.0

    def test_workload_registry_round_trip(self):
        """The bench registry produces self-consistent workloads."""
        w = build_workload("dblp", 8, "sparse", 0)
        assert w.query.is_sparse
        assert w.cg.query is w.query
        assert len(w.order) == 8
        truth = w.ground_truth()
        if truth.complete:
            assert truth.count >= 1  # extracted queries embed by construction


class TestFailureInjection:
    def test_empty_candidate_graph_yields_zero_estimates(self):
        """A query with an impossible label: every component must agree the
        count is zero rather than crash."""
        from repro.query.query_graph import QueryGraph

        graph = load_dataset("yeast")
        bad_label = graph.n_labels + 5
        query = QueryGraph.from_edges([bad_label, 0], [(0, 1)])
        cg = build_candidate_graph(graph, query)
        assert cg.is_empty()
        order = quicksi_order(query, graph)
        assert count_embeddings(cg, order).count == 0
        run = CPUSamplingRunner(WanderJoinEstimator()).run(cg, order, 100, rng=0)
        assert run.estimate == 0.0
        gpu = GSWORDEngine(AlleyEstimator(), EngineConfig.gsword()).run(
            cg, order, 128, rng=0
        )
        assert gpu.estimate == 0.0 and gpu.n_valid == 0

    def test_engine_survives_single_vertex_candidates(self):
        """Degenerate workload: every candidate set of size <= 1."""
        from repro.graph.builder import from_edge_list
        from repro.query.query_graph import QueryGraph

        graph = from_edge_list(
            [(0, 1), (1, 2)], labels=[0, 1, 2], name="tiny"
        )
        query = QueryGraph.from_edges([0, 1, 2], [(0, 1), (1, 2)])
        cg = build_candidate_graph(graph, query)
        order = quicksi_order(query, graph)
        result = GSWORDEngine(WanderJoinEstimator(), EngineConfig.gsword()).run(
            cg, order, 64, rng=0
        )
        assert result.estimate == pytest.approx(1.0)

    def test_trawling_with_budget_zero_discards_everything(self):
        w = build_workload("yeast", 8, "dense", 0)
        trawler = TrawlingEstimator(AlleyEstimator(), max_enum_nodes=0)
        result = trawler.run(w.cg, w.order, 100, rng=0)
        # Any enumeration that visits even one node exceeds the budget and
        # is discarded; only trivially-empty extensions can "complete", so
        # the estimate collapses to zero.
        assert result.estimate == 0.0
        assert result.n_discarded > 0
        assert result.n_samples + result.n_discarded >= 100

    def test_pipeline_zero_budget_falls_back_to_sampling(self):
        w = build_workload("yeast", 8, "dense", 0)
        pipeline = CoProcessingPipeline(
            AlleyEstimator(),
            PipelineConfig(
                n_batches=2, trawls_per_batch=8, enum_nodes_per_ms=1e-9
            ),
        )
        result = pipeline.run(w.cg, w.order, 512, rng=0)
        assert result.n_enumerated == 0
        assert result.final_estimate == result.sampling_estimate


class TestDeterminismAcrossStack:
    def test_full_stack_reproducible(self):
        """Same seeds, same everything — the property every experiment in
        benchmarks/ depends on."""
        def one_run():
            w = build_workload("hprd", 8, "dense", 0)
            engine = GSWORDEngine(AlleyEstimator(), EngineConfig.gsword())
            gpu = engine.run(w.cg, w.order, 1024, rng=99)
            pipe = CoProcessingPipeline(
                AlleyEstimator(), PipelineConfig(n_batches=2, trawls_per_batch=8)
            ).run(w.cg, w.order, 512, rng=5)
            return (
                gpu.estimate, gpu.n_samples, gpu.profile.total_cycles,
                pipe.final_estimate, pipe.n_enumerated,
            )

        assert one_run() == one_run()
