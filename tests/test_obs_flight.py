"""Tests for repro.obs.flight: the bounded flight-recorder ring, RNG
state serialization, the trigger monitor (cooldowns, lazy contexts),
postmortem bundle I/O, bit-identical replay, and the serving layer's
end-to-end capture-then-replay path under a deterministic fault storm."""

import json

import numpy as np
import pytest

from repro.candidate.candidate_graph import build_candidate_graph
from repro.core.config import EngineConfig
from repro.core.engine import GSWORDEngine
from repro.errors import ObservabilityError, ServiceError
from repro.estimators.alley import AlleyEstimator
from repro.faults import FaultKind, FaultPlan
from repro.gpu.costmodel import GPUSpec
from repro.graph.datasets import load_dataset
from repro.obs import NO_TRACE, TraceRecorder
from repro.obs.flight import (
    FLIGHT_SCHEMA,
    TRIGGER_KINDS,
    FlightMonitor,
    FlightPolicy,
    FlightRecorder,
    build_bundle,
    deserialize_rng_state,
    graph_identity,
    load_bundle,
    replay_bundle,
    round_lane_keys,
    serialize_engine_config,
    serialize_gpu_spec,
    serialize_plan,
    serialize_rng_state,
    serialize_round,
    write_bundle,
)
from repro.query.extract import extract_query
from repro.query.matching_order import quicksi_order
from repro.serve import EstimateRequest, EstimationService, ServiceConfig
from repro.serve.controller import BudgetPolicy
from repro.utils.rng import clone_state, derive_seed, generator_from_state


@pytest.fixture(scope="module")
def workload():
    graph = load_dataset("yeast")
    query = extract_query(graph, 4, rng=8)
    cg = build_candidate_graph(graph, query)
    order = quicksi_order(query, graph)
    return graph, query, cg, order


def _context():
    """Minimal live-object trigger context a monitor can serialize."""
    return {"engine_config": EngineConfig(), "gpu_spec": GPUSpec()}


# ----------------------------------------------------------------------
# The bounded ring
# ----------------------------------------------------------------------
class TestFlightRecorderRing:
    def test_ring_bounded_and_counts_evictions(self):
        rec = FlightRecorder(capacity=8)
        for i in range(20):
            rec.instant(f"e{i}", track="engine", sim_ms=float(i))
        assert rec.n_evicted == 12
        snap = rec.ring_snapshot()
        events = [e for e in snap["traceEvents"] if e["ph"] != "M"]
        assert len(events) == 8
        # The ring keeps the *most recent* capacity events.
        assert [e["name"] for e in events] == [f"e{i}" for i in range(12, 20)]
        assert snap["otherData"]["ring_capacity"] == 8
        assert snap["otherData"]["n_evicted"] == 12

    def test_ring_snapshot_tolerates_open_spans(self):
        rec = FlightRecorder(capacity=16)
        rec.begin("batch", track="engine")
        rec.instant("mid", track="engine")
        # A postmortem snapshot happens mid-flight: the open span is
        # reported, not an error (unlike chrome_trace()).
        snap = rec.ring_snapshot()
        assert snap["otherData"]["open_spans"] == ["batch"]
        with pytest.raises(ObservabilityError):
            rec.chrome_trace()

    def test_capacity_validated(self):
        with pytest.raises(ObservabilityError):
            FlightRecorder(capacity=0)
        with pytest.raises(ObservabilityError):
            FlightPolicy(capacity=0)

    def test_flight_recording_is_bit_identical(self, workload):
        _, _, cg, order = workload
        plain = GSWORDEngine(AlleyEstimator(), EngineConfig()).run(
            cg, order, 256, rng=7
        )
        rec = FlightRecorder(capacity=64)
        recorded = GSWORDEngine(
            AlleyEstimator(), EngineConfig(), recorder=rec
        ).run(cg, order, 256, rng=7)
        assert recorded.estimate == plain.estimate
        assert recorded.simulated_ms() == plain.simulated_ms()
        assert rec.n_events > 0


# ----------------------------------------------------------------------
# Serialization building blocks
# ----------------------------------------------------------------------
class TestRngStateSerde:
    def test_seed_sequence_round_trip(self):
        state = np.random.SeedSequence(42).spawn(3)[2]
        payload = json.loads(json.dumps(serialize_rng_state(state)))
        back = deserialize_rng_state(payload)
        assert isinstance(back, np.random.SeedSequence)
        assert back.spawn_key == state.spawn_key
        a = generator_from_state(clone_state(state)).integers(0, 1 << 30, 16)
        b = generator_from_state(clone_state(back)).integers(0, 1 << 30, 16)
        assert (a == b).all()

    def test_int_round_trip(self):
        payload = json.loads(json.dumps(serialize_rng_state(1234)))
        assert deserialize_rng_state(payload) == 1234

    def test_unknown_kind_rejected(self):
        with pytest.raises(ObservabilityError):
            deserialize_rng_state({"kind": "philox-raw", "value": 1})

    def test_lane_keys_pure_function_of_state(self):
        state = np.random.SeedSequence(derive_seed(9, "lanes"))
        a = round_lane_keys(state, n_samples=4096, tasks_per_warp=32)
        b = round_lane_keys(state, n_samples=4096, tasks_per_warp=32)
        assert a == b and len(a) > 0
        # Limited by both the cap and the round's actual warp count.
        assert len(round_lane_keys(state, 32, 32, limit=8)) == 1
        assert len(round_lane_keys(state, 4096, 32, limit=3)) == 3


class TestGraphIdentity:
    def test_explicit_id_with_fingerprint_kept_verbatim(self):
        # The graph must not even be touched (no fingerprint hashing).
        assert graph_identity(object(), graph_id="g@v3#abc") == "g@v3#abc"

    def test_composed_from_graph(self, workload):
        graph = workload[0]
        fp = graph.content_fingerprint()
        assert graph_identity(graph) == f"yeast@v0#{fp}"
        assert graph_identity(graph, graph_version=5) == f"yeast@v5#{fp}"
        assert graph_identity(graph, graph_id="yeast@v2") == f"yeast@v2#{fp}"


# ----------------------------------------------------------------------
# Policy validation + the trigger monitor
# ----------------------------------------------------------------------
class TestFlightPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"cooldown_ms": -1.0},
            {"max_bundles": 0},
            {"shed_rate_threshold": 0.0},
            {"shed_rate_threshold": 1.5},
            {"hedge_rate_threshold": 0.0},
            {"qerror_threshold": 0.5},
        ],
    )
    def test_invalid_policy_rejected(self, kwargs):
        with pytest.raises(ObservabilityError):
            FlightPolicy(**kwargs)


class TestFlightMonitor:
    def test_consider_builds_bundle(self):
        rec = FlightRecorder(capacity=16)
        rec.instant("warmup", track="engine")
        monitor = FlightMonitor(FlightPolicy(), rec)
        bundle = monitor.consider(
            "breaker_open", 3.0, {"estimator": "alley"}, _context()
        )
        assert bundle is not None and bundle in monitor.bundles
        assert bundle["schema"] == FLIGHT_SCHEMA
        assert bundle["trigger"]["kind"] == "breaker_open"
        assert bundle["trigger"]["sim_ms"] == 3.0
        assert bundle["trigger"]["details"]["estimator"] == "alley"
        names = [
            e["name"] for e in bundle["ring"]["traceEvents"]
            if e["ph"] != "M"
        ]
        # The trigger annotates the ring before snapshotting it.
        assert names[-1] == "flight.trigger"
        json.dumps(bundle)  # self-contained and JSON-safe

    def test_unknown_kind_rejected(self):
        monitor = FlightMonitor(FlightPolicy(), NO_TRACE)
        with pytest.raises(ObservabilityError):
            monitor.consider("disk_full", 0.0, {}, _context())
        with pytest.raises(ObservabilityError):
            build_bundle(
                kind="disk_full", sim_ms=0.0, details={}, ring={},
                metrics={},
                engine_config=serialize_engine_config(EngineConfig()),
                gpu_spec=serialize_gpu_spec(GPUSpec()), graph="",
                plan=None, round_capture=None,
            )

    def test_cooldown_suppresses_per_kind(self):
        monitor = FlightMonitor(
            FlightPolicy(cooldown_ms=50.0), FlightRecorder(capacity=8)
        )
        ctx = _context()
        assert monitor.consider("breaker_open", 0.0, {}, ctx) is not None
        assert monitor.consider("breaker_open", 10.0, {}, ctx) is None
        # Cooldowns are per kind: a different trigger still fires.
        assert monitor.consider("kernel_timeout", 10.0, {}, ctx) is not None
        assert monitor.consider("breaker_open", 60.0, {}, ctx) is not None
        assert monitor.n_triggers == 3
        assert monitor.n_suppressed == 1
        assert monitor.snapshot()["bundle_kinds"] == [
            "breaker_open", "kernel_timeout", "breaker_open"
        ]

    def test_max_bundles_drops_oldest(self):
        monitor = FlightMonitor(
            FlightPolicy(cooldown_ms=0.0, max_bundles=2),
            FlightRecorder(capacity=8),
        )
        ctx = _context()
        for i in range(3):
            monitor.consider("qerror_drift", float(i), {"i": i}, ctx)
        assert len(monitor.bundles) == 2
        assert [b["trigger"]["details"]["i"] for b in monitor.bundles] == [1, 2]

    def test_lazy_context_evaluated_only_on_fire(self):
        monitor = FlightMonitor(
            FlightPolicy(cooldown_ms=50.0), FlightRecorder(capacity=8)
        )
        calls = []

        def context():
            calls.append(1)
            return _context()

        assert monitor.consider("shed_spike", 0.0, {}, context) is not None
        assert monitor.consider("shed_spike", 1.0, {}, context) is None
        # The suppressed firing never paid for context serialization.
        assert len(calls) == 1

    def test_check_shed_gates(self):
        policy = FlightPolicy(shed_rate_threshold=0.5, shed_min_events=8)
        monitor = FlightMonitor(policy, FlightRecorder(capacity=8))
        ctx = _context()
        assert monitor.check_shed(0.0, 1.0, 4, ctx) is None  # too few events
        assert monitor.check_shed(0.0, 0.4, 16, ctx) is None  # below rate
        bundle = monitor.check_shed(0.0, 0.8, 16, ctx, details={"reason": "q"})
        assert bundle is not None
        assert bundle["trigger"]["details"]["shed_rate"] == 0.8
        assert bundle["trigger"]["details"]["reason"] == "q"

    def test_check_hedges_needs_full_window(self):
        policy = FlightPolicy(hedge_window=8, hedge_rate_threshold=0.5)
        monitor = FlightMonitor(policy, FlightRecorder(capacity=8))
        ctx = _context()
        assert monitor.check_hedges(0.0, 4, 4, ctx) is None  # window not full
        bundle = monitor.check_hedges(1.0, 4, 2, ctx)  # 6/8 hedged
        assert bundle is not None
        assert bundle["trigger"]["details"]["hedge_rate"] == 0.75

    def test_check_q_error(self):
        monitor = FlightMonitor(
            FlightPolicy(qerror_threshold=2.0), FlightRecorder(capacity=8)
        )
        ctx = _context()
        assert monitor.check_q_error(0.0, 110.0, 100.0, ctx) is None
        bundle = monitor.check_q_error(0.0, 10.0, 100.0, ctx)
        assert bundle is not None
        assert bundle["trigger"]["details"]["q_error"] == 10.0
        # A zero reference is an infinite q-error, not a crash.
        monitor2 = FlightMonitor(FlightPolicy(), FlightRecorder(capacity=8))
        assert monitor2.check_q_error(0.0, 5.0, 0.0, ctx) is not None


# ----------------------------------------------------------------------
# Bundle I/O
# ----------------------------------------------------------------------
class TestBundleIO:
    def test_write_load_round_trip(self, tmp_path):
        monitor = FlightMonitor(FlightPolicy(), FlightRecorder(capacity=8))
        bundle = monitor.consider("hedge_storm", 2.0, {}, _context())
        path = str(tmp_path / "bundle.json")
        write_bundle(bundle, path)
        assert load_bundle(path) == json.loads(json.dumps(bundle))

    def test_load_rejects_garbage_and_wrong_schema(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        with pytest.raises(ObservabilityError):
            load_bundle(str(bad))
        wrong = tmp_path / "wrong.json"
        wrong.write_text(json.dumps({"schema": "repro.trace/1"}))
        with pytest.raises(ObservabilityError):
            load_bundle(str(wrong))
        with pytest.raises(ObservabilityError):
            load_bundle(str(tmp_path / "missing.json"))


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------
def _make_bundle(workload, config, n_samples=512):
    """Run one engine round, then hand-capture it the way the serving
    layer does, through the same serialize_* helpers a live trigger uses."""
    graph, query, cg, order = workload
    state = np.random.SeedSequence(derive_seed(123, "flight-replay"))
    engine = GSWORDEngine(AlleyEstimator(), config)
    try:
        result = engine.run(
            cg, order, n_samples, rng=generator_from_state(clone_state(state))
        )
    finally:
        engine.close()
    launch = {
        "rng_state": state,
        "n_samples": n_samples,
        "shard_offset": 0,
        "stall_factor": 1.0,
        "estimate": float(result.estimate),
        "simulated_ms": float(result.simulated_ms()),
        "backend": result.backend_label,
        "n_warps": int(result.n_warps),
        "round": 1,
        "launch_index": None,
    }
    return build_bundle(
        kind="kernel_timeout",
        sim_ms=5.0,
        details={},
        ring={"traceEvents": [], "otherData": {"source": "none"}},
        metrics={},
        engine_config=serialize_engine_config(config),
        gpu_spec=serialize_gpu_spec(GPUSpec()),
        graph=graph_identity(graph),
        plan=serialize_plan(graph, query, order, "alley", "quicksi"),
        round_capture=serialize_round(
            launch, config.tasks_per_warp, config.rng_mode
        ),
    )


class TestReplay:
    def test_sequential_replay_bit_identical(self, workload):
        bundle = _make_bundle(workload, EngineConfig())
        # A JSON round trip first: replay must work from the file form.
        report = replay_bundle(json.loads(json.dumps(bundle)))
        assert report["match"]
        assert report["estimate_match"] and report["simulated_ms_match"]
        assert report["lane_keys_match"] is None  # sequential mode
        assert report["replayed"] == report["expected"]

    def test_counter_replay_checks_lane_keys(self, workload):
        bundle = _make_bundle(workload, EngineConfig(rng_mode="counter"))
        assert bundle["round"]["lane_keys"]  # captured at serialize time
        report = replay_bundle(json.loads(json.dumps(bundle)))
        assert report["match"] and report["lane_keys_match"] is True

    def test_tampered_expectation_detected(self, workload):
        bundle = json.loads(json.dumps(_make_bundle(workload, EngineConfig())))
        bundle["round"]["expected"]["estimate"] += 1.0
        report = replay_bundle(bundle)
        assert not report["match"] and not report["estimate_match"]

    def test_bundle_without_round_not_replayable(self):
        bundle = build_bundle(
            kind="shed_spike", sim_ms=0.0, details={}, ring={}, metrics={},
            engine_config=serialize_engine_config(EngineConfig()),
            gpu_spec=serialize_gpu_spec(GPUSpec()), graph="g@v0#0",
            plan=None, round_capture=None,
        )
        with pytest.raises(ObservabilityError):
            replay_bundle(bundle)


# ----------------------------------------------------------------------
# Serving-layer integration
# ----------------------------------------------------------------------
def _storm_service(seed=99):
    """The chaos bench's deterministic trigger storm, miniaturised:
    retries off, heavy stalls, a watchdog far below a 64x-stalled launch."""
    return EstimationService(ServiceConfig(
        policy=BudgetPolicy(min_round_samples=256, max_round_samples=2048),
        faults=FaultPlan(
            seed=derive_seed(seed, "flight-test"),
            rates={FaultKind.STALL: 0.9},
            stall_factor=64.0,
        ),
        watchdog_ms=0.05,
        retry=None,
        cpu_fallback=True,
    ))


def _run_storm(service, workload, n=6):
    graph, query = workload[0], workload[1]
    for _ in range(n):
        try:
            service.estimate(
                EstimateRequest(graph=graph, query=query, max_samples=2048)
            )
        except Exception:  # noqa: BLE001 - the storm may fail requests
            pass
    return service


class TestServiceFlight:
    def test_recorder_ladder(self):
        # Flight recording is the always-on default...
        service = EstimationService(ServiceConfig())
        assert isinstance(service.recorder, FlightRecorder)
        assert service.flight is not None
        # ...full tracing wins over it...
        traced = EstimationService(ServiceConfig(trace=True))
        assert type(traced.recorder) is TraceRecorder
        # ...and flight=None disables both ring and monitor.
        off = EstimationService(ServiceConfig(flight=None))
        assert off.recorder is NO_TRACE
        assert off.flight is None
        with pytest.raises(ServiceError):
            off.write_flight_bundle("/dev/null")

    def test_untriggered_service_has_no_bundles(self):
        service = EstimationService(ServiceConfig())
        assert service.flight_bundles() == []
        with pytest.raises(ServiceError):
            service.write_flight_bundle("/dev/null")

    def test_storm_captures_replayable_bundles(self, workload, tmp_path):
        service = _run_storm(_storm_service(), workload)
        bundles = service.flight_bundles()
        assert bundles
        kinds = {b["trigger"]["kind"] for b in bundles}
        assert kinds <= set(TRIGGER_KINDS)
        assert kinds & {"kernel_timeout", "breaker_open"}
        snap = service.metrics_snapshot()
        assert snap["flight"]["n_triggers"] >= 1
        assert snap["flight"]["n_bundles"] == len(bundles)

        replayable = [b for b in bundles if b["round"] is not None]
        assert replayable
        bundle = replayable[-1]
        assert bundle["graph"].startswith("yeast@v0#")
        assert bundle["faults"] is not None
        # Replay from the JSON form — bit-identical, with the captured
        # stall factor re-applied.
        report = replay_bundle(json.loads(json.dumps(bundle)))
        assert report["match"]
        assert report["stall_factor"] == bundle["round"]["stall_factor"]
        # write_flight_bundle persists the newest bundle verbatim.
        path = str(tmp_path / "postmortem.json")
        written = service.write_flight_bundle(path)
        assert load_bundle(path) == json.loads(json.dumps(written))

    def test_storm_is_deterministic(self, workload):
        def signature(service):
            return [
                (b["trigger"]["kind"], b["trigger"]["sim_ms"],
                 json.dumps(b["round"], sort_keys=True))
                for b in service.flight_bundles()
            ]

        a = signature(_run_storm(_storm_service(), workload))
        b = signature(_run_storm(_storm_service(), workload))
        assert a == b and a

    def test_qerror_drift_via_report_q_error(self, workload):
        graph = workload[0]
        service = EstimationService(ServiceConfig())
        service.note_graph_identity(graph)
        assert service.report_q_error(105.0, 100.0) is None
        bundle = service.report_q_error(1000.0, 100.0)
        assert bundle is not None
        assert bundle["trigger"]["kind"] == "qerror_drift"
        # Pre-launch trigger: identity comes from the hint, no plan yet.
        assert bundle["graph"].startswith("yeast@v0#")
        assert bundle["plan"] is None and bundle["round"] is None


# ----------------------------------------------------------------------
# trace-report extensions: top-N spans, anomalies, bundle inspection
# ----------------------------------------------------------------------
class TestTraceReportExtensions:
    def _recorder_with_spans(self):
        rec = FlightRecorder(capacity=64)
        for name, dur in (("launch.a", 3.0), ("launch.b", 1.0),
                          ("launch.c", 2.0)):
            handle = rec.begin(name, track="engine", args={"n_warps": 4})
            rec.end(handle, sim_dur_ms=dur)
        rec.instant("fault.stall", track="engine")
        rec.instant("retry", track="engine")
        rec.instant("request.submit", track="serve")
        return rec

    def test_top_spans_orders_by_duration(self):
        from repro.obs.report import top_spans

        payload = self._recorder_with_spans().ring_snapshot()
        rows = top_spans(payload, 2)
        assert [(r["name"], r["sim_ms"]) for r in rows] == [
            ("launch.a", 3.0), ("launch.c", 2.0)
        ]
        # Wall-clock noise is stripped; real args survive.
        assert rows[0]["args"] == {"n_warps": 4}
        with pytest.raises(ObservabilityError):
            top_spans(payload, 0)

    def test_anomaly_section_separates_trouble(self):
        from repro.obs.report import anomaly_instants, count_instants

        payload = self._recorder_with_spans().ring_snapshot()
        assert count_instants(payload) == {
            "fault.stall": 1, "retry": 1, "request.submit": 1,
        }
        # Routine annotations are excluded from the anomaly tally.
        assert anomaly_instants(payload) == {"fault.stall": 1, "retry": 1}

    def test_flight_bundle_inspectable_via_trace_report(self, tmp_path):
        from repro.obs.report import load_trace, render_report

        rec = self._recorder_with_spans()
        monitor = FlightMonitor(FlightPolicy(), rec)
        bundle = monitor.consider(
            "breaker_open", 6.0, {"estimator": "alley"},
            {**_context(), "graph_identity": "yeast@v0#deadbeef"},
        )
        path = str(tmp_path / "bundle.json")
        write_bundle(bundle, path)
        payload = load_trace(path)  # bundles load transparently
        assert payload["otherData"]["flight_trigger"]["kind"] == (
            "breaker_open"
        )
        text = render_report(payload)
        assert "flight bundle: trigger=breaker_open" in text
        assert "yeast@v0#deadbeef" in text
        assert "top 3 slowest spans" in text or "slowest spans" in text
        assert "flight.trigger=1" in text and "fault.stall=1" in text
