"""Tests for warp streaming: the A-Res reservoir (Theorem 2 invariant) and
the collaborative/independent phase schedule of Alg. 3."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.streaming import (
    StreamingSchedule,
    WeightedReservoir,
    streaming_schedule,
    warp_select,
)


class TestWeightedReservoir:
    def test_single_item(self):
        r = WeightedReservoir.create(rng=0)
        assert r.is_empty
        assert r.offer(7, 2.0)
        assert r.item == 7 and r.weight == 2.0
        assert r.selection_probability == 1.0

    def test_zero_weight_ignored(self):
        r = WeightedReservoir.create(rng=0)
        assert not r.offer(1, 0.0)
        assert r.is_empty and r.total_weight == 0.0

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            WeightedReservoir.create(rng=0).offer(1, -1.0)

    def test_total_weight_accumulates(self):
        r = WeightedReservoir.create(rng=0)
        r.offer(1, 2.0)
        r.offer(2, 3.0)
        assert r.total_weight == pytest.approx(5.0)
        assert r.selection_probability == pytest.approx(r.weight / 5.0)

    def test_uniform_selection_distribution(self):
        """Theorem 2 with equal weights: every item chosen ~ uniformly."""
        counts = np.zeros(8)
        for trial in range(4000):
            r = WeightedReservoir.create(rng=trial)
            for item in range(8):
                r.offer(item, 1.0)
            counts[r.item] += 1
        expected = 4000 / 8
        # Chi-square-ish sanity: within 5 sigma per bin.
        sigma = np.sqrt(expected * (1 - 1 / 8))
        assert np.all(np.abs(counts - expected) < 5 * sigma)

    def test_weighted_selection_distribution(self):
        """Inclusion probability proportional to weight."""
        weights = [1.0, 2.0, 4.0]
        counts = np.zeros(3)
        trials = 6000
        for trial in range(trials):
            r = WeightedReservoir.create(rng=trial)
            for item, w in enumerate(weights):
                r.offer(item, w)
            counts[r.item] += 1
        total = sum(weights)
        for item, w in enumerate(weights):
            expected = trials * w / total
            sigma = np.sqrt(expected)
            assert abs(counts[item] - expected) < 6 * sigma

    def test_merge_candidate_preserves_invariant(self):
        """Lines 14-16 of Alg. 3: accepting the batch winner with
        probability batch/total keeps per-item inclusion ~ w/total."""
        trials = 6000
        hits = 0
        for trial in range(trials):
            r = WeightedReservoir.create(rng=trial)
            r.offer(0, 3.0)  # curV with weight 3
            # A pre-reduced batch of total weight 6 whose winner is item 9.
            r.merge_candidate(9, 2.0, batch_total=6.0)
            if r.item == 9:
                hits += 1
        # P(reservoir holds the batch winner) = 6/9.
        expected = trials * 6.0 / 9.0
        assert abs(hits - expected) < 6 * np.sqrt(expected / 3)

    def test_merge_zero_batch_noop(self):
        r = WeightedReservoir.create(rng=0)
        r.offer(1, 1.0)
        assert not r.merge_candidate(2, 1.0, 0.0)
        assert r.item == 1


class TestWarpSelect:
    def test_all_zero_weights(self):
        item, weight, total = warp_select([1, 2, 3], [0.0, 0.0, 0.0], rng=0)
        assert item == -1 and weight == 0.0 and total == 0.0

    def test_single_positive(self):
        item, weight, total = warp_select([5, 6], [0.0, 2.0], rng=0)
        assert item == 6 and weight == 2.0 and total == 2.0

    def test_uniformity(self):
        counts = np.zeros(4)
        for trial in range(4000):
            item, _, _ = warp_select([0, 1, 2, 3], [1.0] * 4, rng=trial)
            counts[item] += 1
        expected = 1000
        assert np.all(np.abs(counts - expected) < 5 * np.sqrt(expected))


class TestStreamingSchedule:
    def test_all_below_threshold(self):
        s = streaming_schedule([5, 10, 31], warp_size=32)
        assert s.collaborative_rounds == 0
        assert s.remainders == (5, 10, 31)
        assert s.independent_max == 31

    def test_single_large_lane(self):
        s = streaming_schedule([100], warp_size=32)
        # 100 -> 68 -> 36 -> 4: three rounds, remainder 4.
        assert s.collaborative_rounds == 3
        assert s.remainders == (4,)
        assert s.total_candidates() == 100

    def test_exact_multiple(self):
        s = streaming_schedule([64], warp_size=32)
        assert s.collaborative_rounds == 2
        assert s.remainders == (0,)

    def test_mixed_lanes(self):
        s = streaming_schedule([64, 10, 40], warp_size=32)
        assert s.collaborative_rounds == 3  # 2 from 64, 1 from 40
        assert s.remainders == (0, 10, 8)
        assert s.total_candidates() == 114

    def test_threshold_exactly_met(self):
        s = streaming_schedule([32], warp_size=32)
        assert s.collaborative_rounds == 1
        assert s.remainders == (0,)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            streaming_schedule([-1])

    @given(st.lists(st.integers(0, 500), min_size=1, max_size=32))
    @settings(max_examples=60, deadline=None)
    def test_conservation_and_bounds(self, lengths):
        s = streaming_schedule(lengths, warp_size=32)
        assert s.total_candidates() == sum(lengths)
        assert all(r < 32 for r in s.remainders)
        assert s.collaborative_rounds >= sum(l // 32 for l in lengths) - len(lengths)
