"""Tests for dynamic batching of rounds (repro/serve/scheduler.py)."""

from collections import deque

import pytest

from repro.candidate.candidate_graph import build_candidate_graph
from repro.core.config import EngineConfig
from repro.core.engine import GSWORDEngine
from repro.errors import ServiceError
from repro.estimators.alley import AlleyEstimator
from repro.gpu.costmodel import GPUSpec
from repro.graph.datasets import load_dataset
from repro.query.extract import extract_query
from repro.query.matching_order import quicksi_order
from repro.serve.scheduler import BatchScheduler, RoundTask

#: A small device so batching/warp-cap effects show at test scale.
SMALL_SPEC = GPUSpec(sm_count=2, resident_warps_per_sm=4)  # 8 resident warps
ENGINE_CONFIG = EngineConfig.gsword(tasks_per_warp=128)


@pytest.fixture(scope="module")
def plans():
    graph = load_dataset("yeast")
    out = []
    for i in range(3):
        query = extract_query(graph, 4, rng=i)
        cg = build_candidate_graph(graph, query)
        out.append((cg, quicksi_order(query, graph)))
    return out


def make_session(plans, i=0, spec=SMALL_SPEC, seed=0):
    cg, order = plans[i % len(plans)]
    engine = GSWORDEngine(AlleyEstimator(), ENGINE_CONFIG, spec)
    return engine.session(cg, order, rng=seed)


class TestRoundTask:
    def test_est_warps(self, plans):
        session = make_session(plans)
        assert RoundTask(session, 128).est_warps() == 1
        assert RoundTask(session, 129).est_warps() == 2
        assert RoundTask(session, 1).est_warps() == 1

    def test_rejects_empty_round(self, plans):
        with pytest.raises(ServiceError):
            RoundTask(make_session(plans), 0)


class TestFormBatch:
    def test_fills_device_then_stops(self, plans):
        scheduler = BatchScheduler(spec=SMALL_SPEC)
        # 256 samples = 2 warps each; 8 resident warps -> 4 tasks per batch.
        queue = deque(
            RoundTask(make_session(plans, i), 256, payload=i) for i in range(6)
        )
        batch = scheduler.form_batch(queue)
        assert [t.payload for t in batch] == [0, 1, 2, 3]  # FIFO prefix
        assert len(queue) == 2

    def test_mixed_sizes_fifo_no_starvation(self, plans):
        """A large task at the head doesn't let later small tasks jump it,
        and a large task behind small ones isn't starved: admission is
        strictly FIFO over the warp budget."""
        scheduler = BatchScheduler(spec=SMALL_SPEC)
        big = RoundTask(make_session(plans, 0), 1024, payload="big")  # 8 warps
        small = [
            RoundTask(make_session(plans, i + 1), 256, payload=f"s{i}")
            for i in range(3)
        ]
        queue = deque([small[0], big, small[1], small[2]])
        first = scheduler.form_batch(queue)
        # small0 (2 warps) + big (8 warps) would exceed 8: batch stops at big?
        # No: big is admitted only if it fits; 2+8 > 8 so the batch is just
        # small0, and big goes next — in arrival order, never skipped.
        assert [t.payload for t in first] == ["s0"]
        second = scheduler.form_batch(queue)
        assert [t.payload for t in second] == ["big"]
        third = scheduler.form_batch(queue)
        assert [t.payload for t in third] == ["s1", "s2"]

    def test_oversized_task_still_admitted_alone(self, plans):
        scheduler = BatchScheduler(spec=SMALL_SPEC)
        queue = deque([RoundTask(make_session(plans), 10_000)])  # ≫ device
        batch = scheduler.form_batch(queue)
        assert len(batch) == 1 and not queue

    def test_max_batch_requests_cap(self, plans):
        scheduler = BatchScheduler(spec=SMALL_SPEC, max_batch_requests=2)
        queue = deque(RoundTask(make_session(plans, i), 128) for i in range(4))
        assert len(scheduler.form_batch(queue)) == 2

    def test_empty_queue(self, plans):
        scheduler = BatchScheduler(spec=SMALL_SPEC)
        assert scheduler.form_batch(deque()) == []
        assert scheduler.run_tick(deque()) is None


class TestExecute:
    def test_batch_accounting_sums_members(self, plans):
        scheduler = BatchScheduler(spec=SMALL_SPEC)
        tasks = [RoundTask(make_session(plans, i, seed=i), 256) for i in range(3)]
        result = scheduler.execute(tasks)
        assert result.n_samples == sum(r.n_samples for r in result.round_results)
        assert result.n_warps == sum(r.n_warps for r in result.round_results)
        assert result.batch_ms > 0
        assert result.samples_per_second > 0

    def test_coresident_batch_beats_serial_launches(self, plans):
        """The fused batch is faster than the same kernels back-to-back —
        emergent from shared occupancy + one launch overhead."""
        scheduler = BatchScheduler(spec=SMALL_SPEC)
        tasks = [RoundTask(make_session(plans, i, seed=i), 256) for i in range(4)]
        result = scheduler.execute(tasks)
        serial_ms = sum(r.simulated_ms() for r in result.round_results)
        assert result.batch_ms < serial_ms

    def test_coresident_no_faster_than_physics(self, plans):
        """The fused batch can't beat the work/parallelism lower bound."""
        scheduler = BatchScheduler(spec=SMALL_SPEC)
        tasks = [RoundTask(make_session(plans, i, seed=i), 256) for i in range(4)]
        result = scheduler.execute(tasks)
        total_cycles = sum(r.profile.total_cycles for r in result.round_results)
        floor = SMALL_SPEC.launch_overhead_ms + SMALL_SPEC.cycles_to_ms(
            total_cycles / SMALL_SPEC.resident_warps
        )
        assert result.batch_ms >= floor * 0.999

    def test_spec_mismatch_rejected(self, plans):
        scheduler = BatchScheduler(spec=SMALL_SPEC)
        alien = make_session(plans, 0, spec=GPUSpec())  # different device
        with pytest.raises(ServiceError):
            scheduler.execute([RoundTask(alien, 128)])

    def test_empty_batch_rejected(self, plans):
        with pytest.raises(ServiceError):
            BatchScheduler(spec=SMALL_SPEC).execute([])

    def test_bad_config_rejected(self):
        with pytest.raises(ServiceError):
            BatchScheduler(max_batch_requests=0)
        with pytest.raises(ServiceError):
            BatchScheduler(warp_overcommit=0)
