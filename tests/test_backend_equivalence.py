"""Scalar vs vectorized backend equivalence (the tentpole invariant).

The vectorized backend is only allowed to change *how fast* the simulator
runs, never *what* it computes: for a fixed seed the two backends must
produce bit-identical HT estimates, per-kernel cycle counters (hence
simulated milliseconds), collected partial instances, and fault-injection
behaviour.  These tests pin that contract across estimators, sync modes,
optimisation presets, seeds, and query sizes.
"""

import pytest

from repro.candidate.candidate_graph import build_candidate_graph
from repro.core.config import (
    BACKENDS,
    RNG_MODES,
    EngineConfig,
    default_backend,
    default_rng_mode,
)
from repro.core.engine import GSWORDEngine, RetryPolicy
from repro.errors import ConfigError, DeviceFault
from repro.estimators.alley import AlleyEstimator
from repro.estimators.cpu_runner import CPUSamplingRunner
from repro.estimators.wanderjoin import WanderJoinEstimator
from repro.faults import FaultInjector, FaultKind, FaultPlan
from repro.graph.datasets import load_dataset
from repro.graph.generators import power_law_cluster_graph, random_labels
from repro.query.extract import extract_query
from repro.query.matching_order import quicksi_order

_PROFILE_FIELDS = (
    "compute_cycles", "mem_cycles", "sync_cycles", "stall_long",
    "stall_wait", "mem_segments", "region_misses", "lane_busy",
    "lane_total", "iterations",
)

_PRESETS = {
    "gsword": EngineConfig.gsword,
    "gpu_baseline": EngineConfig.gpu_baseline,
    "inheritance_only": EngineConfig.inheritance_only,
    "sample_sync_baseline": EngineConfig.sample_sync_baseline,
}


@pytest.fixture(scope="module")
def plans():
    """(cg, order) per query size, built once for the whole module."""
    graph = load_dataset("yeast")
    out = {}
    for k in (4, 6):
        query = extract_query(graph, k, rng=5 + k, name=f"equiv-q{k}")
        cg = build_candidate_graph(graph, query)
        assert not cg.is_empty()
        out[k] = (cg, quicksi_order(query, graph))
    return out


@pytest.fixture(scope="module")
def plc_plan():
    """A draw-sensitive workload: candidate sets wide enough that the
    estimate depends on the sampled stream (the yeast queries above are
    near-deterministic, which would let rng-mode bugs slip through)."""
    labels = random_labels(300, 3, rng=1)
    graph = power_law_cluster_graph(300, 3, 0.5, rng=2, labels=labels, name="plc")
    query = extract_query(graph, 4, rng=4, name="plc-q4")
    cg = build_candidate_graph(graph, query)
    assert not cg.is_empty()
    return cg, quicksi_order(query, graph)


def run_backend(backend, estimator, cg, order, n, seed, **config_kwargs):
    config = _PRESETS[config_kwargs.pop("preset", "gsword")](
        backend=backend, **config_kwargs
    )
    engine = GSWORDEngine(estimator, config=config)
    return engine.run(cg, order, n, rng=seed, collect_states=True)


def assert_identical(a, b):
    """Every observable of the two runs matches exactly (no tolerances)."""
    assert a.estimate == b.estimate
    assert a.n_samples == b.n_samples
    assert a.n_root_samples == b.n_root_samples
    assert a.n_valid == b.n_valid
    assert a.n_warps == b.n_warps
    assert a.longest_warp_cycles == b.longest_warp_cycles
    assert a.simulated_ms() == b.simulated_ms()
    for field in _PROFILE_FIELDS:
        assert getattr(a.profile.warp, field) == getattr(b.profile.warp, field), field
    assert a.collected == b.collected


class TestEngineEquivalence:
    @pytest.mark.parametrize("estimator_cls", [WanderJoinEstimator, AlleyEstimator])
    @pytest.mark.parametrize("preset", sorted(_PRESETS))
    @pytest.mark.parametrize("seed", [0, 20240613])
    @pytest.mark.parametrize("k", [4, 6])
    def test_bit_identical_runs(self, plans, estimator_cls, preset, seed, k):
        cg, order = plans[k]
        a = run_backend("scalar", estimator_cls(), cg, order, 96, seed, preset=preset)
        b = run_backend(
            "vectorized", estimator_cls(), cg, order, 96, seed, preset=preset
        )
        assert a.backend == "scalar"
        assert b.backend == "vectorized"
        assert_identical(a, b)

    def test_partial_warp_and_odd_quota(self, plans):
        """Sample counts that leave idle lanes and a short last warp."""
        cg, order = plans[4]
        for n in (1, 31, 33, 41):
            a = run_backend(
                "scalar", AlleyEstimator(), cg, order, n, 7,
                preset="gsword", tasks_per_warp=17,
            )
            b = run_backend(
                "vectorized", AlleyEstimator(), cg, order, n, 7,
                preset="gsword", tasks_per_warp=17,
            )
            assert_identical(a, b)

    def test_streaming_threshold_and_max_depth(self, plans):
        cg, order = plans[6]
        for kwargs in ({"streaming_threshold": 8}, {"max_depth": 2}):
            a = run_backend(
                "scalar", AlleyEstimator(), cg, order, 64, 3, **kwargs
            )
            b = run_backend(
                "vectorized", AlleyEstimator(), cg, order, 64, 3, **kwargs
            )
            assert_identical(a, b)

    def test_custom_estimator_falls_back_to_scalar(self, plans):
        """Subclasses may override RSV hooks, so only exact types vectorize."""

        class TweakedWJ(WanderJoinEstimator):
            pass

        cg, order = plans[4]
        result = run_backend("vectorized", TweakedWJ(), cg, order, 32, 1)
        assert result.backend == "scalar"
        reference = run_backend("scalar", WanderJoinEstimator(), cg, order, 32, 1)
        assert_identical(result, reference)


class TestRngModeEquivalence:
    """The cross-backend bit-identity contract holds within each rng mode.

    ``sequential`` replays numpy ``Generator.integers`` draw-for-draw;
    ``counter`` derives every draw as a pure function of the warp's key and
    a draw index (:mod:`repro.utils.lanerng`).  Either way scalar,
    vectorized, and fused must agree bit-for-bit — the mode changes *which*
    stream a warp consumes, never lets backends disagree about it.
    """

    @pytest.mark.parametrize("estimator_cls", [WanderJoinEstimator, AlleyEstimator])
    @pytest.mark.parametrize("rng_mode", sorted(RNG_MODES))
    def test_three_backends_bit_identical(self, plc_plan, estimator_cls, rng_mode):
        cg, order = plc_plan
        runs = {
            backend: run_backend(
                backend, estimator_cls(), cg, order, 96, 20240613,
                rng_mode=rng_mode,
            )
            for backend in ("scalar", "vectorized", "fused")
        }
        assert runs["vectorized"].backend == "vectorized"
        assert runs["fused"].backend == "fused"
        assert_identical(runs["scalar"], runs["vectorized"])
        assert_identical(runs["scalar"], runs["fused"])

    def test_modes_are_distinct_streams(self, plc_plan):
        """Sanity: switching the mode actually changes the draws."""
        cg, order = plc_plan
        seq = run_backend(
            "vectorized", AlleyEstimator(), cg, order, 96, 3,
            rng_mode="sequential",
        )
        ctr = run_backend(
            "vectorized", AlleyEstimator(), cg, order, 96, 3,
            rng_mode="counter",
        )
        assert seq.estimate != ctr.estimate

    def test_counter_mode_odd_quota(self, plc_plan):
        cg, order = plc_plan
        for n in (1, 31, 41):
            a = run_backend(
                "scalar", AlleyEstimator(), cg, order, n, 7,
                rng_mode="counter", tasks_per_warp=17,
            )
            b = run_backend(
                "fused", AlleyEstimator(), cg, order, n, 7,
                rng_mode="counter", tasks_per_warp=17,
            )
            assert_identical(a, b)

    def test_counter_mode_cpu_runner_deterministic(self, plc_plan):
        cg, order = plc_plan
        runner = CPUSamplingRunner(
            AlleyEstimator(), backend="scalar", rng_mode="counter"
        )
        a = runner.run(cg, order, 128, rng=11)
        b = runner.run(cg, order, 128, rng=11)
        assert a.estimate == b.estimate
        assert a.n_valid == b.n_valid
        # Batch mode consumes the counter stream in a different order, so
        # it is equal in distribution, not bit-identical — but per seed it
        # is exactly reproducible too.
        c1 = CPUSamplingRunner(
            AlleyEstimator(), backend="vectorized", rng_mode="counter"
        ).run(cg, order, 128, rng=11)
        c2 = CPUSamplingRunner(
            AlleyEstimator(), backend="vectorized", rng_mode="counter"
        ).run(cg, order, 128, rng=11)
        assert c1.estimate == c2.estimate
        assert c1.total_cycles == c2.total_cycles


class TestCPURunnerEquivalence:
    """Batch mode consumes the stream in a different order, so estimates
    are equal in distribution rather than bit-identical — but simulated
    cycles are draw-independent and must agree exactly."""

    @pytest.mark.parametrize("estimator_cls", [WanderJoinEstimator, AlleyEstimator])
    def test_cycles_identical(self, plans, estimator_cls):
        cg, order = plans[4]
        checkpoints = [64, 256]
        a = CPUSamplingRunner(estimator_cls(), backend="scalar").run(
            cg, order, 256, rng=11, checkpoint_at=checkpoints
        )
        b = CPUSamplingRunner(estimator_cls(), backend="vectorized").run(
            cg, order, 256, rng=11, checkpoint_at=checkpoints
        )
        assert a.total_cycles == b.total_cycles
        assert a.simulated_ms == b.simulated_ms
        assert a.n_samples == b.n_samples
        assert sorted(a.checkpoints) == sorted(b.checkpoints)
        # Same per-checkpoint simulated time (cycle model is shared).
        for n in checkpoints:
            assert a.checkpoints[n][1] == b.checkpoints[n][1]

    def test_batch_mode_deterministic_per_seed(self, plans):
        cg, order = plans[4]
        runner = CPUSamplingRunner(AlleyEstimator(), backend="vectorized")
        a = runner.run(cg, order, 512, rng=42)
        b = runner.run(cg, order, 512, rng=42)
        assert a.estimate == b.estimate
        assert a.n_valid == b.n_valid

    def test_batch_mode_statistically_consistent(self, plans):
        """Both backends estimate the same quantity (loose 3-sigma band)."""
        cg, order = plans[4]
        a = CPUSamplingRunner(AlleyEstimator(), backend="scalar").run(
            cg, order, 2048, rng=5
        )
        b = CPUSamplingRunner(AlleyEstimator(), backend="vectorized").run(
            cg, order, 2048, rng=5
        )
        sigma = max(a.accumulator.std_error, b.accumulator.std_error, 1e-9)
        assert abs(a.estimate - b.estimate) <= 6 * sigma


class TestFaultEquivalence:
    """`repro.faults` plans replay identically on both backends: the same
    launches fail with the same kinds, and the committed estimates match."""

    def _session(self, backend, plan, cg, order, seed):
        engine = GSWORDEngine(
            AlleyEstimator(),
            EngineConfig.gsword(backend=backend),
            injector=FaultInjector(plan),
        )
        return engine.session(cg, order, rng=seed)

    @pytest.mark.parametrize("seed", [0, 9])
    def test_fault_plan_replays_identically(self, plans, seed):
        cg, order = plans[4]
        plan = FaultPlan(
            seed=123,
            rates={FaultKind.CORRUPTION: 0.4},
            overrides={2: (FaultKind.CORRUPTION,)},
        )
        outcomes = {}
        for backend in BACKENDS:
            session = self._session(backend, plan, cg, order, seed)
            log = []
            for _ in range(6):
                try:
                    report = session.run_round_resilient(
                        40, RetryPolicy(max_retries=2)
                    )
                    log.append(("ok", report.n_faults, report.fault_ms))
                except DeviceFault:
                    log.append(("failed", None, None))
            result = session.result()
            outcomes[backend] = (
                log, result.estimate, result.n_samples,
                session.n_faults, session.n_retries, session.fault_ms,
            )
        assert outcomes["scalar"] == outcomes["vectorized"]

    def test_clean_session_rounds_identical(self, plans):
        cg, order = plans[6]
        results = {}
        for backend in BACKENDS:
            engine = GSWORDEngine(
                WanderJoinEstimator(), EngineConfig.gsword(backend=backend)
            )
            session = engine.session(cg, order, rng=77)
            per_round = [session.run_round(32).estimate for _ in range(4)]
            results[backend] = (per_round, session.result().estimate)
        assert results["scalar"] == results["vectorized"]


class TestBackendConfig:
    def test_rejects_unknown_backend(self):
        with pytest.raises(ConfigError):
            EngineConfig(backend="cuda")
        with pytest.raises(ConfigError):
            CPUSamplingRunner(WanderJoinEstimator(), backend="cuda")

    def test_with_backend(self):
        config = EngineConfig.gsword().with_backend("scalar")
        assert config.backend == "scalar"

    def test_default_backend_env_override(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert default_backend() == "vectorized"
        monkeypatch.setenv("REPRO_BACKEND", "scalar")
        assert default_backend() == "scalar"
        assert EngineConfig.gsword().backend == "scalar"

    def test_rejects_unknown_rng_mode(self):
        with pytest.raises(ConfigError):
            EngineConfig(rng_mode="philox128")
        with pytest.raises(ConfigError):
            CPUSamplingRunner(WanderJoinEstimator(), rng_mode="philox128")

    def test_with_rng_mode(self):
        config = EngineConfig.gsword().with_rng_mode("counter")
        assert config.rng_mode == "counter"
        assert EngineConfig.gsword().rng_mode == default_rng_mode()

    def test_default_rng_mode_env_override(self, monkeypatch):
        monkeypatch.delenv("REPRO_RNG_MODE", raising=False)
        assert default_rng_mode() == "sequential"
        monkeypatch.setenv("REPRO_RNG_MODE", "counter")
        assert default_rng_mode() == "counter"
        assert EngineConfig.gsword().rng_mode == "counter"
