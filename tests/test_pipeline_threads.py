"""Dedicated coverage for the pipeline's ``backend="threads"`` path — the
real ``ThreadPoolExecutor`` with wall-clock deadlines (repro/core/pipeline.py).

The simulated backend is the deterministic default; these tests pin down
the contract the threads backend must share with it: the GPU-side sampling
stream is identical under a fixed seed (only enumeration completion may
differ), timeouts discard rather than error, and accounting stays
consistent.
"""

import pytest

from repro.bench.workloads import build_workload
from repro.core.pipeline import CoProcessingPipeline, PipelineConfig
from repro.estimators.alley import AlleyEstimator


@pytest.fixture(scope="module")
def workload():
    return build_workload("yeast", 8, "dense", 1)


def run_pipeline(workload, *, seed=11, n_samples=1024, **cfg_kwargs):
    cfg_kwargs.setdefault("n_batches", 2)
    cfg_kwargs.setdefault("trawls_per_batch", 8)
    cfg = PipelineConfig(backend="threads", **cfg_kwargs)
    pipe = CoProcessingPipeline(AlleyEstimator(), cfg)
    return pipe.run(workload.cg, workload.order, n_samples, rng=seed)


class TestThreadsBackend:
    def test_accounting_consistent(self, workload):
        result = run_pipeline(workload, wallclock_budget_scale=2.0)
        assert len(result.batches) == 2
        assert result.n_samples >= 1024
        for batch in result.batches:
            assert batch.n_trawls == 8
            assert (
                batch.n_trawls_completed + batch.n_trawls_discarded
                <= batch.n_trawls
            )
            assert batch.cpu_ms > 0  # real wall-clock, actually measured
        assert result.n_enumerated == sum(
            b.n_trawls_completed for b in result.batches
        )

    def test_generous_budget_completes_trawls(self, workload):
        """With seconds of wall-clock per simulated ms, small enumerations
        finish and feed the trawling estimate."""
        result = run_pipeline(workload, wallclock_budget_scale=10.0)
        assert result.n_enumerated > 0
        assert result.trawling_accumulator.n > 0
        assert result.final_estimate >= 0

    def test_tight_deadline_discards_not_errors(self, workload):
        """An (effectively) zero wall-clock budget cuts enumerations off —
        the paper's timeout rule — without raising or corrupting results."""
        result = run_pipeline(workload, wallclock_budget_scale=1e-12)
        total = sum(b.n_trawls_completed for b in result.batches)
        discarded = sum(b.n_trawls_discarded for b in result.batches)
        assert total + discarded > 0
        # Whatever completed in ~0 time is fine; nothing may error out.
        assert result.sampling_estimate >= 0
        assert result.final_estimate >= 0

    def test_gpu_stream_matches_simulated_backend(self, workload):
        """The backend only changes CPU-side enumeration: under one seed the
        GPU sampling estimate and sample counts are identical across
        backends."""
        threads = run_pipeline(workload, wallclock_budget_scale=2.0, seed=7)
        sim_cfg = PipelineConfig(n_batches=2, trawls_per_batch=8)
        simulated = CoProcessingPipeline(AlleyEstimator(), sim_cfg).run(
            workload.cg, workload.order, 1024, rng=7
        )
        assert threads.sampling_estimate == simulated.sampling_estimate
        assert threads.n_samples == simulated.n_samples
        assert threads.n_trawl_samples >= 0
        assert threads.total_gpu_ms == simulated.total_gpu_ms

    def test_single_thread_pool(self, workload):
        result = run_pipeline(
            workload, cpu_threads=1, wallclock_budget_scale=2.0
        )
        assert len(result.batches) == 2
        assert result.n_samples >= 1024
