"""Tests for repro.obs: trace schema/nesting, the metrics registry, the
deterministic reservoir, and the tracing↔engine reconciliation contract
(span geometry equals the cost model's simulated milliseconds, and
tracing never perturbs an estimate)."""

import json

import pytest

from repro.candidate.candidate_graph import build_candidate_graph
from repro.core.config import EngineConfig
from repro.core.engine import GSWORDEngine
from repro.errors import ObservabilityError
from repro.estimators.alley import AlleyEstimator
from repro.graph.datasets import load_dataset
from repro.obs import (
    NO_TRACE,
    MetricsRegistry,
    Reservoir,
    TraceRecorder,
    load_trace,
    registry_from_run,
    registry_from_service_snapshot,
    render_report,
    span_breakdown,
    validate_chrome_trace,
)
from repro.query.extract import extract_query
from repro.query.matching_order import quicksi_order
from repro.serve.metrics import LatencyHistogram, percentile


@pytest.fixture(scope="module")
def workload():
    graph = load_dataset("yeast")
    query = extract_query(graph, 5, rng=8, query_type="dense")
    cg = build_candidate_graph(graph, query)
    order = quicksi_order(query, graph)
    return cg, order


# ----------------------------------------------------------------------
# Trace recorder + Chrome-trace export
# ----------------------------------------------------------------------
class TestTraceRecorder:
    def test_export_schema(self):
        rec = TraceRecorder(process_name="test-proc")
        outer = rec.begin("outer", track="t", args={"k": 1})
        inner = rec.begin("inner", track="t")
        rec.end(inner, sim_dur_ms=2.0)
        rec.end(outer, args={"status": "ok"})
        rec.instant("mark", track="t")
        payload = rec.chrome_trace()
        assert payload["displayTimeUnit"] == "ms"
        spans = validate_chrome_trace(payload)
        assert [s["name"] for s in spans] == ["inner", "outer"]
        for span in spans:
            for key in ("name", "ph", "ts", "dur", "pid", "tid"):
                assert key in span
            assert span["ph"] == "X"
            # Two-clock contract: wall time rides in args.
            assert "wall_ms" in span["args"]
            assert "wall_dur_ms" in span["args"]
        meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        names = {e["name"]: e["args"]["name"] for e in meta}
        assert names["process_name"] == "test-proc"
        assert "t" in names.values()

    def test_nesting_and_cursor_monotonicity(self):
        rec = TraceRecorder()
        parent = rec.begin("parent", track="t")
        child = rec.begin("child", track="t")
        rec.end(child, sim_dur_ms=3.0)
        rec.end(parent)  # end = cursor → parent covers the child
        sibling = rec.begin("sibling", track="t")
        rec.end(sibling, sim_dur_ms=1.0)
        spans = {s["name"]: s for s in rec.spans()}
        assert spans["parent"]["dur"] >= spans["child"]["dur"]
        # The sibling starts where the parent ended — no overlap.
        assert spans["sibling"]["ts"] >= (
            spans["parent"]["ts"] + spans["parent"]["dur"]
        )
        validate_chrome_trace(rec.chrome_trace())

    def test_out_of_order_end_raises(self):
        rec = TraceRecorder()
        outer = rec.begin("outer", track="t")
        rec.begin("inner", track="t")
        with pytest.raises(ObservabilityError, match="out of order"):
            rec.end(outer)

    def test_export_with_open_span_raises(self):
        rec = TraceRecorder()
        rec.begin("dangling", track="t")
        with pytest.raises(ObservabilityError, match="open spans"):
            rec.chrome_trace()

    def test_add_span_advances_cursor(self):
        rec = TraceRecorder()
        rec.add_span("a", track="t", sim_t0_ms=1.0, sim_dur_ms=4.0)
        assert rec.sim_now("t") == pytest.approx(5.0)
        with pytest.raises(ObservabilityError):
            rec.add_span("bad", track="t", sim_t0_ms=0.0, sim_dur_ms=-1.0)

    def test_set_clock_is_monotone(self):
        rec = TraceRecorder()
        rec.set_clock("t", 10.0)
        rec.set_clock("t", 4.0)  # earlier clock is a no-op
        assert rec.sim_now("t") == pytest.approx(10.0)
        with pytest.raises(ObservabilityError):
            rec.advance("t", -1.0)

    def test_warp_sample_every_validated(self):
        with pytest.raises(ObservabilityError):
            TraceRecorder(warp_sample_every=0)

    def test_no_trace_is_inert(self):
        assert NO_TRACE.enabled is False
        handle = NO_TRACE.begin("x", track="t")
        NO_TRACE.end(handle)
        NO_TRACE.instant("x")
        NO_TRACE.advance("t", 5.0)
        assert NO_TRACE.sim_now("t") == 0.0


class TestValidateChromeTrace:
    def _event(self, name, ts, dur, tid=1):
        return {"name": name, "cat": "c", "ph": "X", "ts": ts, "dur": dur,
                "pid": 1, "tid": tid, "args": {}}

    def test_missing_key_raises(self):
        bad = {"traceEvents": [{"ph": "X", "ts": 0.0, "pid": 1, "tid": 1}]}
        with pytest.raises(ObservabilityError, match="missing required key"):
            validate_chrome_trace(bad)

    def test_missing_dur_raises(self):
        event = self._event("a", 0.0, 1.0)
        del event["dur"]
        with pytest.raises(ObservabilityError, match="missing dur"):
            validate_chrome_trace({"traceEvents": [event]})

    def test_negative_duration_raises(self):
        bad = {"traceEvents": [self._event("a", 0.0, -1.0)]}
        with pytest.raises(ObservabilityError, match="negative"):
            validate_chrome_trace(bad)

    def test_partial_overlap_raises(self):
        bad = {"traceEvents": [
            self._event("a", 0.0, 10.0),
            self._event("b", 5.0, 10.0),  # straddles a's end
        ]}
        with pytest.raises(ObservabilityError, match="overlaps"):
            validate_chrome_trace(bad)

    def test_overlap_on_other_track_is_fine(self):
        ok = {"traceEvents": [
            self._event("a", 0.0, 10.0, tid=1),
            self._event("b", 5.0, 10.0, tid=2),
        ]}
        assert len(validate_chrome_trace(ok)) == 2

    def test_unknown_phase_raises(self):
        bad = {"traceEvents": [
            {"name": "a", "ph": "Z", "ts": 0.0, "pid": 1, "tid": 1}
        ]}
        with pytest.raises(ObservabilityError, match="phase"):
            validate_chrome_trace(bad)

    def test_payload_without_events_raises(self):
        with pytest.raises(ObservabilityError, match="traceEvents"):
            validate_chrome_trace({})


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.counter("requests", "reqs").inc(3)
        reg.gauge("depth", "queue depth").set(7.5)
        hist = reg.histogram("latency", "ms")
        for v in (1.0, 2.0, 3.0):
            hist.observe(v)
        snap = reg.snapshot()
        assert snap["requests"]["type"] == "counter"
        assert snap["requests"]["series"][0]["value"] == 3.0
        assert snap["depth"]["series"][0]["value"] == 7.5
        summary = snap["latency"]["series"][0]
        assert summary["count"] == 3
        assert summary["sum"] == pytest.approx(6.0)
        assert summary["p50"] == pytest.approx(2.0)

    def test_labelled_children(self):
        reg = MetricsRegistry()
        fam = reg.counter("by_kind", "k", labels=("kind",))
        fam.labels(kind="a").inc()
        fam.labels(kind="a").inc()
        fam.labels(kind="b").inc()
        series = {
            tuple(e["labels"].items()): e["value"]
            for e in reg.snapshot()["by_kind"]["series"]
        }
        assert series[(("kind", "a"),)] == 2.0
        assert series[(("kind", "b"),)] == 1.0

    def test_label_mismatch_raises(self):
        reg = MetricsRegistry()
        fam = reg.counter("c", "c", labels=("kind",))
        with pytest.raises(ObservabilityError, match="expects labels"):
            fam.labels(wrong="x")
        with pytest.raises(ObservabilityError, match="use .labels"):
            fam.inc()  # labelled family has no default child

    def test_reregistration(self):
        reg = MetricsRegistry()
        a = reg.counter("c", "c", labels=("k",))
        assert reg.counter("c", "c", labels=("k",)) is a  # idempotent
        with pytest.raises(ObservabilityError, match="already registered"):
            reg.gauge("c", "c", labels=("k",))
        with pytest.raises(ObservabilityError, match="already registered"):
            reg.counter("c", "c", labels=("other",))

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ObservabilityError, match="only increase"):
            reg.counter("c", "c").inc(-1.0)

    def test_prometheus_text(self):
        reg = MetricsRegistry(namespace="repro")
        reg.counter("reqs", "requests").inc(2)
        fam = reg.gauge("depth", "d", labels=("queue",))
        fam.labels(queue="main").set(4)
        hist = reg.histogram("lat", "latency")
        hist.observe(1.0)
        hist.observe(3.0)
        text = reg.prometheus_text()
        assert "# HELP repro_reqs requests" in text
        assert "# TYPE repro_reqs counter" in text
        assert "repro_reqs 2" in text
        assert 'repro_depth{queue="main"} 4' in text
        assert "# TYPE repro_lat summary" in text
        assert 'repro_lat{quantile="0.5"} 2' in text
        assert "repro_lat_sum 4" in text
        assert "repro_lat_count 2" in text


class TestServiceSnapshotBridge:
    def test_minimal_snapshot_maps(self):
        snap = {
            "n_submitted": 4, "n_completed": 4, "n_degraded": 1,
            "n_failed": 0, "n_batches": 2, "n_rounds": 6,
            "total_samples": 1024, "total_valid": 900,
            "busy_ms": 12.5, "samples_per_second": 81920.0,
            "mean_batch_size": 2.0, "max_queue_depth": 3, "clock_ms": 20.0,
            "rounds_by_backend": {"vectorized": 6},
            "rounds_by_shard_count": {"2": 6},
            "latency_ms": {"count": 4, "mean": 5.0, "p50": 4.0,
                           "p95": 9.0, "p99": 9.5, "max": 10.0},
            "queue_wait_ms": {"count": 4, "mean": 1.0, "p50": 1.0,
                              "p95": 2.0, "p99": 2.0, "max": 2.0},
            "resilience": {"n_faults": 2, "n_retries": 1,
                           "faults_by_kind": {"transient": 2},
                           "fault_ms": 3.0},
            "cache": {"entries": 2, "bytes": 100, "max_bytes": 1000,
                      "hit_rate": 0.5, "hits": 2, "misses": 2,
                      "evictions": 0},
            "stall": {"stall_long_per_iter": 10.0,
                      "stall_wait_per_iter": 1.0, "warp_efficiency": 0.9},
            "multidev_ms": 7.5,
        }
        reg = registry_from_service_snapshot(snap)
        out = reg.snapshot()
        states = {e["labels"]["state"]: e["value"]
                  for e in out["requests_total"]["series"]}
        assert states == {"submitted": 4.0, "completed": 4.0,
                          "degraded": 1.0, "failed": 0.0}
        assert out["multidev_ms"]["series"][0]["value"] == 7.5
        stall = {e["labels"]["metric"]: e["value"]
                 for e in out["kernel_stall"]["series"]}
        assert stall["warp_efficiency"] == pytest.approx(0.9)
        events = {e["labels"]["event"]: e["value"]
                  for e in out["resilience_events_total"]["series"]}
        assert events["faults"] == 2.0 and events["retries"] == 1.0
        # The whole registry serialises (what --metrics-out writes).
        json.dumps(out)
        assert reg.prometheus_text().startswith("# HELP")


# ----------------------------------------------------------------------
# percentile() / Reservoir / LatencyHistogram
# ----------------------------------------------------------------------
class TestPercentile:
    def test_empty_returns_zero(self):
        assert percentile([], 50) == 0.0

    def test_single_sample(self):
        for q in (0, 37.5, 100):
            assert percentile([4.2], q) == 4.2

    def test_extremes(self):
        values = [5.0, 1.0, 3.0, 2.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 5.0

    def test_interpolation(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == pytest.approx(2.5)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], -1)
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestReservoir:
    def test_exact_aggregates_and_bounded_sample(self):
        res = Reservoir(max_samples=64)
        values = [float((i * 37) % 101) for i in range(1000)]
        for v in values:
            res.add(v)
        assert res.count == 1000
        assert res.total == pytest.approx(sum(values))
        assert res.mean == pytest.approx(sum(values) / 1000)
        assert res.max_value == max(values)
        assert len(res.values()) == 64

    def test_deterministic(self):
        a, b = Reservoir(max_samples=32), Reservoir(max_samples=32)
        for i in range(500):
            a.add(float(i))
            b.add(float(i))
        assert a.values() == b.values()

    def test_validation(self):
        with pytest.raises(ObservabilityError):
            Reservoir(max_samples=0)
        with pytest.raises(ValueError):
            Reservoir().quantile(1.5)


class TestLatencyHistogram:
    def test_empty_snapshot(self):
        snap = LatencyHistogram().snapshot()
        assert snap == {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0,
                        "p99": 0.0, "max": 0.0}

    def test_bounded_with_exact_aggregates(self):
        hist = LatencyHistogram(max_samples=128)
        values = [float((i * 13) % 97) + 0.5 for i in range(2000)]
        for v in values:
            hist.add(v)
        assert len(hist.samples) == 128  # memory stays bounded
        snap = hist.snapshot()
        assert snap["count"] == 2000
        assert snap["mean"] == pytest.approx(sum(values) / 2000)
        assert snap["max"] == max(values)
        # Percentiles are estimates from the retained subsample — close,
        # not exact (the documented tradeoff for bounded memory).
        assert abs(snap["p50"] - percentile(values, 50)) < 15.0


# ----------------------------------------------------------------------
# End-to-end: engine tracing reconciles with the cost model
# ----------------------------------------------------------------------
class TestEngineTracing:
    def test_kernel_span_matches_simulated_ms(self, workload):
        cg, order = workload
        rec = TraceRecorder(warp_sample_every=1)
        engine = GSWORDEngine(
            AlleyEstimator(), EngineConfig.gsword(), recorder=rec
        )
        result = engine.run(cg, order, 512, rng=11)
        launches = rec.spans("kernel.launch")
        assert len(launches) == 1
        assert launches[0]["dur"] == pytest.approx(
            result.simulated_ms() * 1000.0
        )
        assert launches[0]["args"]["status"] == "ok"
        # Sampled warp spans sit inside the engine timeline.
        assert rec.spans("warp")
        validate_chrome_trace(rec.chrome_trace())

    def test_sharded_trace_reproduces_makespan(self, workload):
        cg, order = workload
        rec = TraceRecorder()
        config = EngineConfig.gsword().with_shards(4)
        with GSWORDEngine(AlleyEstimator(), config, recorder=rec) as engine:
            result = engine.run(cg, order, 1024, rng=3)
        shard_spans = rec.spans("shard.kernel")
        assert 1 < len(shard_spans) <= 4
        k0 = rec.spans("kernel.launch")[0]["ts"]
        # All shards launch together at the kernel start; their envelope
        # plus the allreduce is the multi-device makespan.
        assert all(s["ts"] == pytest.approx(k0) for s in shard_spans)
        envelope = max(s["dur"] for s in shard_spans)
        allreduce = rec.spans("multidev.allreduce")[0]
        assert (envelope + allreduce["dur"]) / 1000.0 == pytest.approx(
            result.multidev_ms()
        )
        validate_chrome_trace(rec.chrome_trace())

    def test_tracing_is_bit_identical(self, workload):
        cg, order = workload
        config = EngineConfig.gsword()
        base = GSWORDEngine(AlleyEstimator(), config).run(
            cg, order, 512, rng=19
        )
        traced = GSWORDEngine(
            AlleyEstimator(), config.with_trace(), ).run(cg, order, 512, rng=19)
        assert traced.estimate == base.estimate
        assert traced.simulated_ms() == base.simulated_ms()
        assert traced.n_valid == base.n_valid

    def test_registry_from_run(self, workload):
        cg, order = workload
        engine = GSWORDEngine(AlleyEstimator(), EngineConfig.gsword())
        result = engine.run(cg, order, 256, rng=5)
        snap = registry_from_run(result).snapshot()
        assert snap["estimate"]["series"][0]["value"] == result.estimate
        assert snap["simulated_ms"]["series"][0]["value"] == pytest.approx(
            result.simulated_ms()
        )
        cycles = {e["labels"]["category"]
                  for e in snap["kernel_cycles"]["series"]}
        assert "compute" in cycles and "memory" in cycles


class TestTraceReport:
    def test_report_renders(self, tmp_path, workload):
        cg, order = workload
        rec = TraceRecorder()
        engine = GSWORDEngine(AlleyEstimator(), EngineConfig.gsword(),
                              recorder=rec)
        session = engine.session(cg, order, rng=2)
        session.run_round(256)
        rec.instant("fault", track="engine", args={"kind": "transient"})
        path = tmp_path / "trace.json"
        rec.write(str(path))
        payload = load_trace(str(path))
        rows = span_breakdown(payload)
        assert any(r["name"] == "engine.round" for r in rows)
        text = render_report(payload)
        assert "engine.round" in text
        assert "fault=1" in text

    def test_load_trace_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json")
        with pytest.raises(ObservabilityError):
            load_trace(str(path))
