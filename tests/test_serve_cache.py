"""Tests for the memory-budgeted LRU plan cache (repro/serve/cache.py)."""

import pytest

from repro.candidate.candidate_graph import (
    build_candidate_graph,
    plan_key,
    query_fingerprint,
)
from repro.errors import ServiceError
from repro.graph.datasets import load_dataset
from repro.query.extract import extract_query
from repro.query.query_graph import QueryGraph
from repro.serve.cache import PlanCache, build_plan


@pytest.fixture(scope="module")
def yeast():
    return load_dataset("yeast")


@pytest.fixture(scope="module")
def queries(yeast):
    return [extract_query(yeast, 4, rng=i, name=f"q{i}") for i in range(4)]


class TestKeys:
    def test_fingerprint_ignores_name(self):
        a = QueryGraph.from_edges([0, 1], [(0, 1)], name="a")
        b = QueryGraph.from_edges([0, 1], [(0, 1)], name="b")
        assert query_fingerprint(a) == query_fingerprint(b)

    def test_fingerprint_separates_structure(self):
        a = QueryGraph.from_edges([0, 1], [(0, 1)])
        b = QueryGraph.from_edges([0, 2], [(0, 1)])
        c = QueryGraph.from_edges([0, 1, 1], [(0, 1), (1, 2)])
        assert len({query_fingerprint(q) for q in (a, b, c)}) == 3

    def test_plan_key_stable_and_param_sensitive(self, yeast, queries):
        q = queries[0]
        assert plan_key(yeast, q) == plan_key(yeast, q)
        assert plan_key(yeast, q) != plan_key(yeast, q, use_nlf=True)
        assert plan_key(yeast, q) != plan_key(yeast, q, order_method="gcare")
        assert plan_key(yeast, q, graph_id="other") != plan_key(yeast, q)

    def test_nbytes_matches_memory_bytes(self, yeast, queries):
        cg = build_candidate_graph(yeast, queries[0])
        assert cg.nbytes == cg.memory_bytes()
        assert cg.nbytes > 0


class TestBuildPlan:
    def test_build_plan_charges_simulated_cost(self, yeast, queries):
        plan = build_plan(yeast, queries[0])
        assert plan.build_ms > 0
        assert plan.nbytes == plan.cg.nbytes
        assert len(plan.order) == queries[0].n_vertices

    def test_unknown_order_method_rejected(self, yeast, queries):
        with pytest.raises(ServiceError):
            build_plan(yeast, queries[0], order_method="magic")


class TestPlanCache:
    def test_hit_miss_metrics(self, yeast, queries):
        cache = PlanCache(max_bytes=1 << 30)
        plan_a, hit = cache.get_or_build(yeast, queries[0])
        assert not hit
        plan_b, hit = cache.get_or_build(yeast, queries[0])
        assert hit
        assert plan_b is plan_a  # the very same built artifact is reused
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["bytes"] == plan_a.nbytes

    def test_eviction_under_budget(self, yeast, queries):
        sizes = [build_plan(yeast, q).nbytes for q in queries[:3]]
        # One byte short of all three: admitting the third must evict.
        cache = PlanCache(max_bytes=sum(sizes) - 1)
        for q in queries[:3]:
            cache.get_or_build(yeast, q)
        assert cache.evictions >= 1
        assert cache.current_bytes <= cache.max_bytes
        # The least-recently-used plan (queries[0]) was evicted: re-fetch
        # misses, while the most recent entry still hits.
        _, hit_old = cache.get_or_build(yeast, queries[0])
        assert not hit_old

    def test_lru_order_respects_access(self, yeast, queries):
        sizes = [build_plan(yeast, q).nbytes for q in queries[:3]]
        cache = PlanCache(max_bytes=sum(sizes) - 1)
        cache.get_or_build(yeast, queries[0])
        cache.get_or_build(yeast, queries[1])
        cache.get_or_build(yeast, queries[0])  # refresh 0
        cache.get_or_build(yeast, queries[2])  # evicts 1, not 0
        _, hit0 = cache.get_or_build(yeast, queries[0])
        assert hit0

    def test_oversized_plan_not_admitted(self, yeast, queries):
        cache = PlanCache(max_bytes=1)  # nothing fits
        plan, hit = cache.get_or_build(yeast, queries[0])
        assert not hit and plan.cg is not None
        assert len(cache) == 0 and cache.current_bytes == 0

    def test_bad_budget_rejected(self):
        with pytest.raises(ServiceError):
            PlanCache(max_bytes=0)

    def test_clear(self, yeast, queries):
        cache = PlanCache(max_bytes=1 << 30)
        cache.get_or_build(yeast, queries[0])
        cache.clear()
        assert len(cache) == 0 and cache.current_bytes == 0


class TestPlanKeyContentFingerprint:
    """Regression: graph_id=None must fall back to a *content* identity.

    Two distinct graphs sharing name, vertex count, and edge count used to
    collide (the old fallback was name+sizes only), silently serving one
    graph's plan for the other."""

    @staticmethod
    def _twins():
        from repro.graph.builder import from_edge_list

        labels = [0, 1, 0, 1]
        a = from_edge_list(
            [(0, 1), (1, 2), (2, 3)], labels=labels, name="twin"
        )
        b = from_edge_list(
            [(0, 1), (1, 3), (2, 3)], labels=labels, name="twin"
        )
        assert a.name == b.name
        assert a.n_vertices == b.n_vertices and a.n_edges == b.n_edges
        return a, b

    def test_same_shape_different_content_distinct_keys(self):
        a, b = self._twins()
        q = QueryGraph.from_edges([0, 1], [(0, 1)])
        assert plan_key(a, q) != plan_key(b, q)
        assert plan_key(a, q) == plan_key(a, q)

    def test_no_false_cache_hit_across_content_twins(self):
        a, b = self._twins()
        q = QueryGraph.from_edges([0, 1], [(0, 1)])
        cache = PlanCache(max_bytes=1 << 30)
        cache.get_or_build(a, q)
        _, hit = cache.get_or_build(b, q)
        assert not hit  # different edges => different plans, no collision


class TestVersionedIds:
    def test_parse_versioned_graph_id(self):
        from repro.serve.cache import parse_versioned_graph_id

        assert parse_versioned_graph_id("g@v3#0123456789abcdef") == ("g", 3)
        assert parse_versioned_graph_id("g@v0") == ("g", 0)
        assert parse_versioned_graph_id("a@v1@v2") == ("a@v1", 2)
        for bad in ("static", "g@vx", "g@v-1", "g#abc", None):
            assert parse_versioned_graph_id(bad) is None

    def test_invalidate_evicts_only_older_versions(self, yeast, queries):
        cache = PlanCache(max_bytes=1 << 30)
        q = queries[0]
        cache.get_or_build(yeast, q, graph_id="mut@v0#aa")
        cache.get_or_build(yeast, q, graph_id="mut@v1#bb")
        cache.get_or_build(yeast, q, graph_id="other@v0#cc")
        cache.get_or_build(yeast, q, graph_id="static-graph")
        assert cache.invalidate("mut", before_version=1) == 1
        stats = cache.stats()
        assert stats["entries"] == 3
        assert stats["evictions_by_reason"]["version"] == 1
        assert stats["evictions_by_reason"]["capacity"] == 0
        # v1, the other graph, and the unversioned entry all survive.
        _, hit = cache.get_or_build(yeast, q, graph_id="mut@v1#bb")
        assert hit
        _, hit = cache.get_or_build(yeast, q, graph_id="static-graph")
        assert hit

    def test_invalidate_all_versions(self, yeast, queries):
        cache = PlanCache(max_bytes=1 << 30)
        q = queries[0]
        cache.get_or_build(yeast, q, graph_id="mut@v0#aa")
        cache.get_or_build(yeast, q, graph_id="mut@v4#bb")
        assert cache.invalidate("mut") == 2
        assert len(cache) == 0

    def test_put_replaces_same_key(self, yeast, queries):
        cache = PlanCache(max_bytes=1 << 30)
        q = queries[0]
        plan, _ = cache.get_or_build(yeast, q, graph_id="mut@v0#aa")
        assert cache.put(plan)  # idempotent re-install, no byte leak
        assert cache.stats()["entries"] == 1
        assert cache.current_bytes == plan.nbytes

    def test_capacity_eviction_labelled(self, yeast, queries):
        sizes = [build_plan(yeast, q).nbytes for q in queries[:3]]
        cache = PlanCache(max_bytes=sum(sizes) - 1)
        for q in queries[:3]:
            cache.get_or_build(yeast, q)
        stats = cache.stats()
        assert stats["evictions_by_reason"]["capacity"] >= 1
        assert stats["evictions_by_reason"]["version"] == 0
