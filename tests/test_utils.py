"""Tests for RNG plumbing, timing helpers, and the exception hierarchy."""

import time

import numpy as np
import pytest

from repro import errors
from repro.utils.rng import as_generator, derive_seed, spawn_generators
from repro.utils.timing import Stopwatch, format_ms


class TestRng:
    def test_int_seed_deterministic(self):
        a = as_generator(7).integers(0, 1000, size=5)
        b = as_generator(7).integers(0, 1000, size=5)
        assert list(a) == list(b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_bad_source_rejected(self):
        with pytest.raises(TypeError):
            as_generator("seed")

    def test_spawn_independent_streams(self):
        children = spawn_generators(3, 4)
        draws = [tuple(c.integers(0, 10**9, size=3)) for c in children]
        assert len(set(draws)) == 4  # all distinct

    def test_spawn_deterministic(self):
        a = [tuple(g.integers(0, 100, 2)) for g in spawn_generators(5, 3)]
        b = [tuple(g.integers(0, 100, 2)) for g in spawn_generators(5, 3)]
        assert a == b

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_derive_seed_stable_and_sensitive(self):
        s1 = derive_seed(42, "eu2005", 16, "dense", 0)
        s2 = derive_seed(42, "eu2005", 16, "dense", 0)
        s3 = derive_seed(42, "eu2005", 16, "dense", 1)
        s4 = derive_seed(43, "eu2005", 16, "dense", 0)
        assert s1 == s2
        assert s1 != s3 and s1 != s4
        assert 0 <= s1 < 2**63


class TestTiming:
    def test_format_ms(self):
        assert format_ms(0.5) == "500.0us"
        assert format_ms(12.3) == "12.3ms"
        assert format_ms(2500.0) == "2.50s"
        with pytest.raises(ValueError):
            format_ms(-1)

    def test_stopwatch_laps(self):
        sw = Stopwatch().start()
        time.sleep(0.01)
        lap = sw.lap("a")
        assert lap >= 5.0
        assert sw.laps["a"] == pytest.approx(lap)
        sw.lap("a")  # accumulates
        assert sw.laps["a"] > lap
        assert sw.total_ms() == pytest.approx(sum(sw.laps.values()))

    def test_stopwatch_requires_start(self):
        with pytest.raises(RuntimeError):
            Stopwatch().lap("x")
        with pytest.raises(RuntimeError):
            Stopwatch().elapsed_ms()


class TestErrors:
    def test_hierarchy(self):
        for cls in (
            errors.GraphError,
            errors.QueryError,
            errors.CandidateGraphError,
            errors.EnumerationBudgetExceeded,
            errors.SimulationError,
            errors.ConfigError,
        ):
            assert issubclass(cls, errors.ReproError)

    def test_budget_error_carries_partial_count(self):
        err = errors.EnumerationBudgetExceeded(41)
        assert err.partial_count == 41
        assert "41" in str(err)
