"""Tests for RNG plumbing, timing helpers, and the exception hierarchy."""

import time

import numpy as np
import pytest

from repro import errors
from repro.utils.rng import (
    DrawLedger,
    as_generator,
    clone_state,
    derive_seed,
    generator_from_state,
    spawn_generator_states,
    spawn_generators,
)
from repro.utils.timing import Stopwatch, format_ms


class TestRng:
    def test_int_seed_deterministic(self):
        a = as_generator(7).integers(0, 1000, size=5)
        b = as_generator(7).integers(0, 1000, size=5)
        assert list(a) == list(b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_bad_source_rejected(self):
        with pytest.raises(TypeError):
            as_generator("seed")

    def test_spawn_independent_streams(self):
        children = spawn_generators(3, 4)
        draws = [tuple(c.integers(0, 10**9, size=3)) for c in children]
        assert len(set(draws)) == 4  # all distinct

    def test_spawn_deterministic(self):
        a = [tuple(g.integers(0, 100, 2)) for g in spawn_generators(5, 3)]
        b = [tuple(g.integers(0, 100, 2)) for g in spawn_generators(5, 3)]
        assert a == b

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_spawn_fallback_without_seed_sequence(self):
        # A bit generator whose ``seed_seq`` attribute is absent exercises
        # the drawn-integer-seed fallback.
        class NoSeedSeqBG:
            def __init__(self, gen):
                self._gen = gen

            def __getattr__(self, name):
                if name == "seed_seq":
                    raise AttributeError(name)
                return getattr(self._gen.bit_generator, name)

        class ExoticGenerator(np.random.Generator):
            pass

        inner = np.random.default_rng(11)
        gen = ExoticGenerator(inner.bit_generator)
        gen.__class__.bit_generator = property(  # type: ignore[assignment]
            lambda self: NoSeedSeqBG(inner)
        )
        try:
            states = spawn_generator_states(gen, 8)
        finally:
            del ExoticGenerator.bit_generator
        assert len(states) == 8
        assert all(isinstance(s, int) for s in states)
        # Full 64-bit space: drawn seeds must be able to exceed 2**63.
        assert all(0 <= s < 2**64 for s in states)
        twin = np.random.default_rng(11)
        expected = [int(twin.integers(0, 2**64, dtype=np.uint64)) for _ in range(8)]
        assert states == expected
        # int states are valid replayable seeds.
        a = generator_from_state(states[0]).integers(0, 1000, size=4)
        b = generator_from_state(states[0]).integers(0, 1000, size=4)
        assert list(a) == list(b)

    def test_clone_state_int_passthrough(self):
        assert clone_state(12345) == 12345
        # Cloned SeedSequence replays identically with the child counter reset.
        seq = spawn_generator_states(3, 1)[0]
        seq.spawn(2)  # advance the original's child counter
        c1, c2 = clone_state(seq), clone_state(seq)
        g1 = [s.generate_state(2).tolist() for s in c1.spawn(2)]
        g2 = [s.generate_state(2).tolist() for s in c2.spawn(2)]
        assert g1 == g2

    def test_derive_seed_stable_and_sensitive(self):
        s1 = derive_seed(42, "eu2005", 16, "dense", 0)
        s2 = derive_seed(42, "eu2005", 16, "dense", 0)
        s3 = derive_seed(42, "eu2005", 16, "dense", 1)
        s4 = derive_seed(43, "eu2005", 16, "dense", 0)
        assert s1 == s2
        assert s1 != s3 and s1 != s4
        assert 0 <= s1 < 2**63


class TestDrawLedger:
    def test_integers_match_generator_exactly(self):
        for seed in range(10):
            gen = np.random.default_rng(seed)
            twin = np.random.default_rng(seed)
            with DrawLedger(gen) as led:
                got = [led.integers(0, 1 + seed * 37 + i % 101) for i in range(500)]
            want = [int(twin.integers(0, 1 + seed * 37 + i % 101)) for i in range(500)]
            assert got == want
            assert gen.bit_generator.state == twin.bit_generator.state

    def test_random_matches_generator_exactly(self):
        gen = np.random.default_rng(99)
        twin = np.random.default_rng(99)
        with DrawLedger(gen) as led:
            got = [led.random() for _ in range(100)]
        want = [float(twin.random()) for _ in range(100)]
        assert got == want
        assert gen.bit_generator.state == twin.bit_generator.state

    def test_interleaved_segments_realign(self):
        # Ledgered segments interleaved with direct generator calls must
        # leave the stream exactly where scalar draws would have.
        gen = np.random.default_rng(7)
        twin = np.random.default_rng(7)
        got, want = [], []
        for seg in range(5):
            with DrawLedger(gen) as led:
                got.extend(led.integers(0, 13 + seg) for _ in range(17))
                got.append(led.random())
            got.extend(int(x) for x in gen.integers(0, 1000, size=3))
            want.extend(int(twin.integers(0, 13 + seg)) for _ in range(17))
            want.append(float(twin.random()))
            want.extend(int(x) for x in twin.integers(0, 1000, size=3))
        assert got == want
        assert gen.bit_generator.state == twin.bit_generator.state

    def test_half_word_buffer_carries_across_entry(self):
        # An odd number of 32-bit draws leaves PCG64 holding a buffered
        # half-word; a ledger opened in that state must consume it first.
        gen = np.random.default_rng(5)
        twin = np.random.default_rng(5)
        gen.integers(0, 1000)
        twin.integers(0, 1000)
        assert gen.bit_generator.state["has_uint32"]
        with DrawLedger(gen) as led:
            got = [led.integers(0, 97) for _ in range(9)]
        want = [int(twin.integers(0, 97)) for _ in range(9)]
        assert got == want
        assert gen.bit_generator.state == twin.bit_generator.state

    def test_degenerate_and_full_ranges(self):
        gen = np.random.default_rng(1)
        twin = np.random.default_rng(1)
        with DrawLedger(gen) as led:
            assert led.integers(5, 6) == 5  # single-value range: no draw
            full = [led.integers(0, 2**32) for _ in range(6)]
            with pytest.raises(ValueError):
                led.integers(3, 2)
            with pytest.raises(ValueError):
                led.integers(0, 2**32 + 1)
        assert int(twin.integers(5, 6)) == 5
        assert full == [int(twin.integers(0, 2**32)) for _ in range(6)]
        assert gen.bit_generator.state == twin.bit_generator.state

    def test_passthrough_for_exotic_bit_generator(self):
        # A generator whose state lacks the half-word buffer keys falls back
        # to direct calls (no batching, still correct).
        gen = np.random.Generator(np.random.MT19937(3))
        twin = np.random.Generator(np.random.MT19937(3))
        with DrawLedger(gen) as led:
            assert not led._active
            got = [led.integers(0, 50) for _ in range(20)]
            got.append(led.random())
        want = [int(twin.integers(0, 50)) for _ in range(20)]
        want.append(float(twin.random()))
        assert got == want


class TestTiming:
    def test_format_ms(self):
        assert format_ms(0.5) == "500.0us"
        assert format_ms(12.3) == "12.3ms"
        assert format_ms(2500.0) == "2.50s"
        with pytest.raises(ValueError):
            format_ms(-1)

    def test_stopwatch_laps(self):
        sw = Stopwatch().start()
        time.sleep(0.01)
        lap = sw.lap("a")
        assert lap >= 5.0
        assert sw.laps["a"] == pytest.approx(lap)
        sw.lap("a")  # accumulates
        assert sw.laps["a"] > lap
        assert sw.total_ms() == pytest.approx(sum(sw.laps.values()))

    def test_stopwatch_requires_start(self):
        with pytest.raises(RuntimeError):
            Stopwatch().lap("x")
        with pytest.raises(RuntimeError):
            Stopwatch().elapsed_ms()


class TestErrors:
    def test_hierarchy(self):
        for cls in (
            errors.GraphError,
            errors.QueryError,
            errors.CandidateGraphError,
            errors.EnumerationBudgetExceeded,
            errors.SimulationError,
            errors.ConfigError,
        ):
            assert issubclass(cls, errors.ReproError)

    def test_budget_error_carries_partial_count(self):
        err = errors.EnumerationBudgetExceeded(41)
        assert err.partial_count == 41
        assert "41" in str(err)
