"""Tests for the versioned mutable graph wrapper (repro/dyn/mutable.py)."""

import numpy as np
import pytest

from repro.dyn.mutable import EdgeBatch, MutableGraph, normalize_edges
from repro.errors import GraphError
from repro.graph.builder import from_edge_list
from repro.graph.generators import erdos_renyi_graph, random_labels
from repro.serve.cache import parse_versioned_graph_id


def small_base(name="mut"):
    return from_edge_list(
        [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)],
        labels=[0, 1, 0, 1, 0],
        name=name,
    )


def edge_set(graph):
    return set(graph.edges())


class TestNormalizeEdges:
    def test_canonicalises_and_dedups(self):
        out = normalize_edges([(3, 1), (1, 3), (0, 2)], n_vertices=5)
        assert out.tolist() == [[0, 2], [1, 3]]
        assert out.dtype == np.int64

    def test_empty(self):
        assert normalize_edges([], n_vertices=5).shape == (0, 2)

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            normalize_edges([(2, 2)], n_vertices=5)

    def test_out_of_range_rejected(self):
        with pytest.raises(GraphError):
            normalize_edges([(0, 5)], n_vertices=5)
        with pytest.raises(GraphError):
            normalize_edges([(-1, 2)], n_vertices=5)


class TestApply:
    def test_insert_and_delete(self):
        g = MutableGraph(small_base())
        delta = g.apply(
            EdgeBatch.make(inserts=[(1, 3)], deletes=[(0, 1)], n_vertices=5)
        )
        assert g.version == 1
        assert delta.version == 1
        assert g.has_edge(1, 3) and not g.has_edge(0, 1)
        assert g.n_edges == 5
        assert delta.added.tolist() == [[1, 3]]
        assert delta.removed.tolist() == [[0, 1]]
        assert sorted(delta.endpoints().tolist()) == [0, 1, 3]

    def test_noop_requests_dropped_from_delta(self):
        g = MutableGraph(small_base())
        delta = g.apply(
            EdgeBatch.make(
                inserts=[(0, 1)],  # already present
                deletes=[(1, 4)],  # absent
                n_vertices=5,
            )
        )
        assert delta.is_empty
        assert g.version == 1  # version advances even for empty deltas
        assert g.n_edges == 5

    def test_reinsert_after_delete_restores(self):
        g = MutableGraph(small_base())
        g.apply(EdgeBatch.make(deletes=[(0, 1)], n_vertices=5))
        g.apply(EdgeBatch.make(inserts=[(0, 1)], n_vertices=5))
        assert g.has_edge(0, 1)
        assert g.delta_size == 0  # overlay cancelled out
        assert g.version == 2

    def test_deltas_since(self):
        g = MutableGraph(small_base())
        d1 = g.apply(EdgeBatch.make(inserts=[(1, 3)], n_vertices=5))
        d2 = g.apply(EdgeBatch.make(deletes=[(2, 3)], n_vertices=5))
        assert g.deltas_since(0) == [d1, d2]
        assert g.deltas_since(1) == [d2]
        assert g.deltas_since(2) == []
        with pytest.raises(GraphError):
            g.deltas_since(3)


class TestSnapshot:
    def test_snapshot_matches_reference_build(self):
        g = MutableGraph(small_base())
        g.apply(
            EdgeBatch.make(
                inserts=[(1, 3), (2, 4)], deletes=[(0, 4)], n_vertices=5
            )
        )
        snap = g.snapshot()
        snap.validate()
        expected = from_edge_list(
            [(0, 1), (1, 2), (2, 3), (3, 4), (1, 3), (2, 4)],
            labels=[0, 1, 0, 1, 0],
        )
        assert edge_set(snap) == edge_set(expected)
        assert np.array_equal(snap.offsets, expected.offsets)
        assert np.array_equal(snap.neighbors, expected.neighbors)

    def test_snapshot_cached_per_version(self):
        g = MutableGraph(small_base())
        g.apply(EdgeBatch.make(inserts=[(1, 3)], n_vertices=5))
        assert g.snapshot() is g.snapshot()
        g.apply(EdgeBatch.make(deletes=[(1, 3)], n_vertices=5))
        assert g.snapshot().n_edges == 5

    def test_snapshot_name_carries_version(self):
        g = MutableGraph(small_base(name="dyn"))
        g.apply(EdgeBatch.make(inserts=[(1, 3)], n_vertices=5))
        assert g.snapshot().name == "dyn@v1"

    def test_randomised_apply_equals_rebuild(self):
        rng = np.random.default_rng(7)
        base = erdos_renyi_graph(
            60, 90, rng=3, labels=random_labels(60, 3, rng=4)
        )
        g = MutableGraph(base)
        edges = set(base.edges())
        for _ in range(25):
            dels = [
                e for e in sorted(edges) if rng.random() < 0.1
            ][:5]
            ins = []
            while len(ins) < 5:
                u, v = int(rng.integers(0, 60)), int(rng.integers(0, 60))
                if u != v and (min(u, v), max(u, v)) not in edges:
                    ins.append((min(u, v), max(u, v)))
            g.apply(EdgeBatch.make(inserts=ins, deletes=dels, n_vertices=60))
            edges -= set(dels)
            edges |= set(ins)
            snap = g.snapshot()
            snap.validate()
            assert edge_set(snap) == edges


class TestCompaction:
    def test_compaction_preserves_snapshots(self):
        base = erdos_renyi_graph(
            80, 120, rng=0, labels=random_labels(80, 2, rng=1)
        )
        plain = MutableGraph(base)
        compacting = MutableGraph(base, compact_every=3)
        rng = np.random.default_rng(11)
        for _ in range(12):
            dels = plain.sample_edges(4, rng=rng)
            ins = plain.sample_non_edges(4, rng=rng)
            batch = EdgeBatch.make(inserts=ins, deletes=dels, n_vertices=80)
            plain.apply(batch)
            compacting.apply(batch)
            a, b = plain.snapshot(), compacting.snapshot()
            assert np.array_equal(a.offsets, b.offsets)
            assert np.array_equal(a.neighbors, b.neighbors)
            assert plain.content_fingerprint() == compacting.content_fingerprint()
        assert compacting.delta_size == 0  # just compacted at version 12

    def test_ratio_compaction_bounds_overlay(self):
        g = MutableGraph(small_base(), compact_ratio=0.3)
        g.apply(EdgeBatch.make(inserts=[(1, 3), (2, 4)], n_vertices=5))
        # 2 > 0.3 * 5 edges -> compacted away.
        assert g.delta_size == 0
        assert g.n_edges == 7

    def test_bad_params(self):
        with pytest.raises(GraphError):
            MutableGraph(small_base(), compact_every=0)
        with pytest.raises(GraphError):
            MutableGraph(small_base(), compact_ratio=0.0)


class TestFingerprint:
    def test_same_content_same_fingerprint_across_histories(self):
        a = MutableGraph(small_base())
        b = MutableGraph(small_base())
        a.apply(EdgeBatch.make(inserts=[(1, 3)], n_vertices=5))
        b.apply(EdgeBatch.make(inserts=[(1, 3), (2, 4)], n_vertices=5))
        b.apply(EdgeBatch.make(deletes=[(2, 4)], n_vertices=5))
        assert a.content_fingerprint() == b.content_fingerprint()
        assert a.version != b.version  # identity differs, content matches

    def test_fingerprint_tracks_content(self):
        g = MutableGraph(small_base())
        fp0 = g.content_fingerprint()
        g.apply(EdgeBatch.make(inserts=[(1, 3)], n_vertices=5))
        assert g.content_fingerprint() != fp0
        g.apply(EdgeBatch.make(deletes=[(1, 3)], n_vertices=5))
        assert g.content_fingerprint() == fp0

    def test_graph_id_parses(self):
        g = MutableGraph(small_base(name="mut"))
        g.apply(EdgeBatch.make(inserts=[(1, 3)], n_vertices=5))
        parsed = parse_versioned_graph_id(g.graph_id)
        assert parsed == ("mut", 1)

    def test_fingerprint_matches_after_compaction(self):
        g = MutableGraph(small_base(), compact_every=1)
        g.apply(EdgeBatch.make(inserts=[(1, 3)], n_vertices=5))
        h = MutableGraph(small_base())
        h.apply(EdgeBatch.make(inserts=[(1, 3)], n_vertices=5))
        assert g.content_fingerprint() == h.content_fingerprint()


class TestSampling:
    def test_sample_edges_are_edges(self):
        g = MutableGraph(small_base())
        g.apply(EdgeBatch.make(inserts=[(1, 3)], n_vertices=5))
        for u, v in g.sample_edges(50, rng=0):
            assert g.has_edge(int(u), int(v))
            assert u < v

    def test_sample_non_edges_are_absent(self):
        g = MutableGraph(small_base())
        for u, v in g.sample_non_edges(50, rng=0):
            assert not g.has_edge(int(u), int(v))
            assert u < v

    def test_sampling_deterministic(self):
        g = MutableGraph(small_base())
        assert np.array_equal(g.sample_edges(10, rng=9), g.sample_edges(10, rng=9))
