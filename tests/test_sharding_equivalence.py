"""Multi-process sharding equivalence (the PR-4 tentpole invariant).

Partitioning a round's warp batch across N shard worker processes is only
allowed to change *where* warps execute, never *what* they compute: for a
fixed seed every shard count must produce bit-identical HT estimates,
inheritance decisions, reservoir contents (``collected``), and simulated
milliseconds — because PR 3 bound one RNG substream per warp, a warp's
results depend only on its own seed, not on which process hosts it.

Also covered here: the shard-crash fault (a killed worker degrades the
round with a *non-retryable* :class:`ShardFailure`, and the pool heals),
the shared-memory pack, the worker runtime, and the multi-device timing
model.
"""

import numpy as np
import pytest

from repro.candidate.candidate_graph import build_candidate_graph
from repro.core.config import EngineConfig, default_shards
from repro.core.engine import GSWORDEngine, RetryPolicy
from repro.core.vectorized import LaneStateScratch, WaveRunner, wave_params_for
from repro.errors import ConfigError, ShardFailure
from repro.estimators.alley import AlleyEstimator
from repro.estimators.wanderjoin import WanderJoinEstimator
from repro.estimators.vectorized import (
    kernel_from_tables,
    kernel_tables,
    vector_kernel_for,
)
from repro.faults import FaultInjector, FaultKind, FaultPlan
from repro.graph.datasets import load_dataset
from repro.multidev import (
    SharedArrayPack,
    ShardedVectorExecutor,
    allreduce_ms,
    attach_pack,
    multidev_makespan_ms,
    shard_of,
)
from repro.multidev.worker import build_runtime
from repro.query.extract import extract_query
from repro.query.matching_order import quicksi_order

_PROFILE_FIELDS = (
    "compute_cycles", "mem_cycles", "sync_cycles", "stall_long",
    "stall_wait", "mem_segments", "region_misses", "lane_busy",
    "lane_total", "iterations",
)

_ESTIMATORS = {"wanderjoin": WanderJoinEstimator, "alley": AlleyEstimator}


@pytest.fixture(scope="module")
def plan():
    graph = load_dataset("yeast")
    query = extract_query(graph, 6, rng=11, name="shard-q6")
    cg = build_candidate_graph(graph, query)
    assert not cg.is_empty()
    return cg, quicksi_order(query, graph)


def run_sharded(estimator_cls, cg, order, n, seed, n_shards, **kwargs):
    # Inheritance needs sample sync (Alg. 2), so iteration-sync runs use
    # the no-inheritance gpu_baseline preset.
    if kwargs.pop("sync_mode", "sample") == "iteration":
        preset = EngineConfig.gpu_baseline
    else:
        preset = EngineConfig.gsword
    config = preset(backend="vectorized", **kwargs).with_shards(n_shards)
    with GSWORDEngine(estimator_cls(), config=config) as engine:
        return engine.run(cg, order, n, rng=seed, collect_states=True)


def assert_identical(a, b):
    assert a.estimate == b.estimate
    assert a.n_samples == b.n_samples
    assert a.n_root_samples == b.n_root_samples
    assert a.n_valid == b.n_valid
    assert a.n_warps == b.n_warps
    assert a.longest_warp_cycles == b.longest_warp_cycles
    assert a.simulated_ms() == b.simulated_ms()
    for field in _PROFILE_FIELDS:
        assert getattr(a.profile.warp, field) == getattr(b.profile.warp, field), field
    assert a.collected == b.collected


# ---------------------------------------------------------------------------
# Bit-identity across shard counts
# ---------------------------------------------------------------------------
class TestShardingEquivalence:
    @pytest.mark.parametrize("estimator", sorted(_ESTIMATORS))
    @pytest.mark.parametrize("sync_mode", ["sample", "iteration"])
    @pytest.mark.parametrize("n_shards", [2, 4, 8])
    def test_bit_identical_across_shard_counts(
        self, plan, estimator, sync_mode, n_shards
    ):
        cg, order = plan
        cls = _ESTIMATORS[estimator]
        base = run_sharded(
            cls, cg, order, 640, 20240613, 1, sync_mode=sync_mode
        )
        sharded = run_sharded(
            cls, cg, order, 640, 20240613, n_shards, sync_mode=sync_mode
        )
        assert base.n_shards == 1
        assert sharded.n_shards == min(n_shards, sharded.n_warps)
        assert_identical(base, sharded)

    def test_session_rounds_and_rerun_paths_identical(self, plan):
        """Round-capable sessions (quota reruns, cumulative folds) agree."""
        cg, order = plan
        outcomes = {}
        for n_shards in (1, 4):
            config = EngineConfig.gsword().with_shards(n_shards)
            with GSWORDEngine(WanderJoinEstimator(), config=config) as engine:
                session = engine.session(cg, order, rng=77)
                per_round = [session.run_round(300).estimate for _ in range(3)]
                result = session.result()
                outcomes[n_shards] = (
                    per_round, result.estimate, result.n_samples,
                    result.simulated_ms(),
                )
        assert outcomes[1] == outcomes[4]

    def test_single_warp_never_spreads(self, plan):
        """A round smaller than one warp uses one shard (no empty workers
        in the makespan) and still matches the unsharded run."""
        cg, order = plan
        base = run_sharded(AlleyEstimator, cg, order, 8, 3, 1)
        sharded = run_sharded(AlleyEstimator, cg, order, 8, 3, 8)
        assert sharded.n_shards == 1
        assert_identical(base, sharded)

    def test_shard_timing_fields(self, plan):
        cg, order = plan
        result = run_sharded(WanderJoinEstimator, cg, order, 640, 5, 4)
        assert result.n_shards > 1
        assert len(result.shard_ms) == result.n_shards
        assert all(ms > 0.0 for ms in result.shard_ms)
        # Makespan model: slowest shard plus the all-reduce, and never
        # faster than total-work / n_shards would suggest is impossible —
        # but always at least the longest shard.
        assert result.multidev_ms() == multidev_makespan_ms(
            result.shard_ms, result.n_shards
        )
        assert result.multidev_ms() > max(result.shard_ms)
        # simulated_ms (single-device accounting) is unchanged by sharding.
        base = run_sharded(WanderJoinEstimator, cg, order, 640, 5, 1)
        assert result.simulated_ms() == base.simulated_ms()
        assert base.multidev_ms() == base.simulated_ms()


# ---------------------------------------------------------------------------
# Shard-crash fault
# ---------------------------------------------------------------------------
class TestShardCrash:
    def test_crash_raises_nonretryable_and_pool_heals(self, plan):
        cg, order = plan
        fault_plan = FaultPlan(overrides={1: (FaultKind.SHARD_CRASH,)})
        config = EngineConfig.gsword().with_shards(2)
        with GSWORDEngine(
            AlleyEstimator(), config=config, injector=FaultInjector(fault_plan)
        ) as engine:
            session = engine.session(cg, order, rng=9)
            first = session.run_round(256)  # 2 warps: really sharded
            assert first.estimate >= 0.0
            with pytest.raises(ShardFailure) as info:
                session.run_round_resilient(256, RetryPolicy(max_retries=3))
            assert info.value.retryable is False
            assert info.value.kind == "shard"
            assert session.n_retries == 0  # non-retryable: no burned retries
            healed = session.run_round(256)  # pool respawned the worker
            assert healed.estimate >= 0.0

    def test_crash_schedule_leaves_classic_kinds_untouched(self):
        """SHARD_CRASH draws from its own stream: enabling it must not
        perturb which launches the four classic kinds hit."""
        base = FaultPlan.from_rates(seed=5, corruption=0.3, stall=0.2)
        with_crash = FaultPlan.from_rates(
            seed=5, corruption=0.3, stall=0.2, shard_crash=0.5
        )
        for launch in range(64):
            a = base.faults_for(launch)
            b = with_crash.faults_for(launch)
            classic_a = tuple(k for k in a.kinds if k != FaultKind.SHARD_CRASH)
            classic_b = tuple(k for k in b.kinds if k != FaultKind.SHARD_CRASH)
            assert classic_a == classic_b
        assert any(
            with_crash.faults_for(i).shard_crashes for i in range(64)
        )


# ---------------------------------------------------------------------------
# Component units: shm pack, worker runtime, executor, timing model
# ---------------------------------------------------------------------------
class TestSharedArrayPack:
    def test_roundtrip_and_readonly_views(self):
        arrays = {
            "a": np.arange(17, dtype=np.int64),
            "b": np.linspace(0.0, 1.0, 5, dtype=np.float64),
            "c": np.zeros((3, 4), dtype=np.int32),
        }
        pack = SharedArrayPack(arrays)
        try:
            views = pack.views()
            for name, arr in arrays.items():
                np.testing.assert_array_equal(views[name], arr)
                assert not views[name].flags.writeable
            shm, attached = attach_pack(pack.manifest)
            try:
                for name, arr in arrays.items():
                    np.testing.assert_array_equal(attached[name], arr)
                    assert not attached[name].flags.writeable
            finally:
                shm.close()
        finally:
            pack.close()
        pack.close()  # idempotent

    def test_empty_pack(self):
        pack = SharedArrayPack({})
        try:
            assert pack.views() == {}
            assert pack.nbytes >= 1
        finally:
            pack.close()


class TestWorkerRuntime:
    def test_in_process_runtime_matches_wave_runner(self, plan):
        """The exact path a shard worker runs (tables → shm → rebuilt
        kernel → WaveRunner) reproduces the in-process runner's output."""
        cg, order = plan
        engine = GSWORDEngine(WanderJoinEstimator(), EngineConfig.gsword())
        kernel = vector_kernel_for(WanderJoinEstimator())(cg, order)
        params = wave_params_for(engine, order, collect_states=False)
        runner = WaveRunner(kernel, params, LaneStateScratch())
        from repro.utils.rng import spawn_generator_states

        states = spawn_generator_states(123, 4)
        quotas = [32, 32, 32, 17]
        expected = runner.run_warps(states, quotas)

        meta, arrays = kernel_tables(kernel)
        pack = SharedArrayPack(arrays)
        try:
            shm, views = attach_pack(pack.manifest)
            try:
                runtime = build_runtime(meta, views, params)
                got = runtime.run(states, quotas)
            finally:
                shm.close()
        finally:
            pack.close()
        assert got == expected

    def test_kernel_tables_roundtrip(self, plan):
        cg, order = plan
        kernel = vector_kernel_for(AlleyEstimator())(cg, order)
        meta, arrays = kernel_tables(kernel)
        rebuilt = kernel_from_tables(dict(meta), arrays)
        assert type(rebuilt) is type(kernel)
        for name, arr in arrays.items():
            np.testing.assert_array_equal(getattr(rebuilt, name), arr)


class TestExecutor:
    def test_requires_at_least_two_shards(self):
        with pytest.raises(ConfigError):
            ShardedVectorExecutor(1)

    def test_closed_executor_rejects_rounds(self, plan):
        executor = ShardedVectorExecutor(2)
        executor.close()
        executor.close()  # idempotent
        with pytest.raises(ConfigError):
            executor.run_round(None, None, [], [])

    def test_shard_of_round_robin(self):
        assert [shard_of(w, 3) for w in range(7)] == [0, 1, 2, 0, 1, 2, 0]


class TestTimingModel:
    def test_allreduce_grows_logarithmically(self):
        assert allreduce_ms(1) == 0.0
        assert allreduce_ms(2) > 0.0
        assert allreduce_ms(4) == pytest.approx(2 * allreduce_ms(2))
        assert allreduce_ms(8) == pytest.approx(3 * allreduce_ms(2))
        assert allreduce_ms(5) == allreduce_ms(8)  # ceil(log2)

    def test_makespan_is_max_plus_allreduce(self):
        shard_ms = [1.0, 3.0, 2.0]
        assert multidev_makespan_ms(shard_ms, 3) == pytest.approx(
            3.0 + allreduce_ms(3)
        )


class TestShardConfig:
    def test_n_shards_validation(self):
        with pytest.raises(ConfigError):
            EngineConfig.gsword(n_shards=0)
        with pytest.raises(ConfigError):
            EngineConfig.gsword(backend="scalar", n_shards=2)
        assert EngineConfig.gsword(backend="scalar", n_shards=1).n_shards == 1

    def test_with_shards(self):
        config = EngineConfig.gsword().with_shards(4)
        assert config.n_shards == 4
        assert config.with_shards(1).n_shards == 1

    def test_default_shards_env_override(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARDS", raising=False)
        assert default_shards() == 1
        monkeypatch.setenv("REPRO_SHARDS", "4")
        assert default_shards() == 4
        assert EngineConfig.gsword().n_shards == 4
        monkeypatch.setenv("REPRO_SHARDS", "zero")
        with pytest.raises(ConfigError):
            default_shards()
