"""Tests for query graphs and query extraction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueryError
from repro.graph.datasets import load_dataset
from repro.query.extract import extract_queries, extract_query
from repro.query.query_graph import (
    QueryGraph,
    clique_query,
    cycle_query,
    path_query,
    star_query,
)


class TestQueryGraph:
    def test_basic(self, paper_query):
        assert paper_query.n_vertices == 5
        assert paper_query.n_edges == 5
        assert paper_query.has_edge(2, 3)
        assert not paper_query.has_edge(0, 4)
        assert paper_query.degree(3) == 3

    def test_disconnected_rejected(self):
        with pytest.raises(QueryError):
            QueryGraph.from_edges([0, 0, 0, 0], [(0, 1), (2, 3)])

    def test_self_loop_rejected(self):
        with pytest.raises(QueryError):
            QueryGraph.from_edges([0, 0], [(0, 0), (0, 1)])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(QueryError):
            QueryGraph.from_edges([0, 0], [(0, 5)])

    def test_sparse_classification(self):
        assert path_query([0, 0, 0, 0]).is_sparse
        assert not star_query(0, [1, 1, 1]).is_sparse
        assert path_query([0] * 8).query_type == "sparse"

    def test_edges_sorted(self, paper_query):
        edges = paper_query.edges()
        assert edges == sorted(edges)

    def test_helpers(self):
        assert cycle_query([0, 1, 2]).n_edges == 3
        assert clique_query([0, 1, 2, 3]).n_edges == 6
        assert star_query(0, [1, 2]).degree(0) == 2
        with pytest.raises(QueryError):
            cycle_query([0, 1])

    def test_automorphisms_triangle(self, triangle_query):
        # Unlabelled triangle: 3! = 6 automorphisms.
        assert triangle_query.automorphism_count() == 6

    def test_automorphisms_labelled_path(self):
        # Path A-B-C has only the identity.
        assert path_query([0, 1, 2]).automorphism_count() == 1

    def test_automorphisms_symmetric_path(self):
        # Path A-B-A can be flipped.
        assert path_query([0, 1, 0]).automorphism_count() == 2

    def test_isomorphic_mapping_check(self, triangle_graph, triangle_query):
        ok = triangle_query.is_isomorphic_mapping(
            triangle_graph.labels, [0, 1, 2], triangle_graph.has_edge
        )
        assert ok
        bad = triangle_query.is_isomorphic_mapping(
            triangle_graph.labels, [0, 1, 1], triangle_graph.has_edge
        )
        assert not bad

    def test_degree_sequence(self, paper_query):
        assert paper_query.degree_sequence() == (1, 1, 2, 3, 3)


class TestExtraction:
    def test_dense_extraction_has_embedding(self):
        graph = load_dataset("yeast")
        q = extract_query(graph, 6, rng=7, query_type="dense")
        assert q.n_vertices == 6
        assert not q.is_sparse

    def test_sparse_extraction(self):
        graph = load_dataset("yeast")
        q = extract_query(graph, 8, rng=9, query_type="sparse")
        assert q.n_vertices == 8
        assert q.is_sparse
        assert q.n_edges == 7  # a tree

    def test_labels_come_from_graph(self):
        graph = load_dataset("yeast")
        q = extract_query(graph, 4, rng=3)
        assert all(0 <= l < graph.n_labels for l in q.labels)

    def test_deterministic_given_seed(self):
        graph = load_dataset("yeast")
        a = extract_query(graph, 8, rng=11, query_type="dense")
        b = extract_query(graph, 8, rng=11, query_type="dense")
        assert a.edge_set == b.edge_set and a.labels == b.labels

    def test_invalid_type_rejected(self):
        graph = load_dataset("yeast")
        with pytest.raises(QueryError):
            extract_query(graph, 4, query_type="weird")

    def test_too_small_rejected(self):
        graph = load_dataset("yeast")
        with pytest.raises(QueryError):
            extract_query(graph, 1)

    def test_extract_queries_mixed(self):
        graph = load_dataset("yeast")
        queries = extract_queries(graph, 8, 4, rng=5, query_type="mixed")
        assert len(queries) == 4
        types = {q.query_type for q in queries}
        assert types == {"sparse", "dense"}

    @given(st.integers(min_value=4, max_value=10))
    @settings(max_examples=5, deadline=None)
    def test_extracted_queries_connected(self, k):
        graph = load_dataset("yeast")
        q = extract_query(graph, k, rng=k, query_type="dense")
        # QueryGraph enforces connectivity; re-assert the size.
        assert q.n_vertices == k
