"""Tests for the SIMT simulator substrate: primitives, memory, profiler,
device timing, cost-model validation."""

import pytest

from repro.errors import ConfigError, SimulationError
from repro.gpu.costmodel import CPUSpec, GPUSpec
from repro.gpu.device import DeviceModel
from repro.gpu.memory import (
    WarpMemoryTracker,
    dependent_chain_cost,
    scan_segments,
    warp_instruction_cost,
)
from repro.gpu.primitives import (
    ballot_first,
    ballot_mask,
    reduce_max_by_key,
    reduce_sum,
    shfl,
    warp_any,
)
from repro.gpu.profiler import KernelProfile, WarpProfile


class TestPrimitives:
    def test_any(self):
        assert warp_any([False, True, False])
        assert not warp_any([False, False])
        assert not warp_any([])

    def test_ballot_first(self):
        assert ballot_first([False, True, True]) == 1
        assert ballot_first([False, False]) == -1

    def test_ballot_mask(self):
        assert ballot_mask([True, False, True]) == 0b101

    def test_shfl(self):
        assert shfl([10, 20, 30], 2) == 30
        with pytest.raises(SimulationError):
            shfl([1, 2], 5)

    def test_reduce_sum(self):
        assert reduce_sum([1.0, 2.0, 3.5]) == pytest.approx(6.5)

    def test_reduce_max_by_key(self):
        key, payload, lane = reduce_max_by_key([0.1, 0.9, 0.5], ["a", "b", "c"])
        assert (key, payload, lane) == (0.9, "b", 1)

    def test_reduce_max_tie_breaks_low_lane(self):
        _, payload, lane = reduce_max_by_key([0.5, 0.5], ["a", "b"])
        assert payload == "a" and lane == 0

    def test_reduce_max_empty_rejected(self):
        with pytest.raises(SimulationError):
            reduce_max_by_key([], [])

    def test_primitives_charge_sync(self):
        spec, profile = GPUSpec(), WarpProfile()
        warp_any([True], profile, spec)
        ballot_first([True], profile, spec)
        shfl([1], 0, profile, spec)
        assert profile.sync_cycles == 3 * spec.sync_cycles


class TestMemoryModel:
    def test_scan_segments(self):
        spec = GPUSpec()
        assert scan_segments(spec, 0, 0) == 0
        assert scan_segments(spec, 0, 1) == 1
        assert scan_segments(spec, 0, spec.segment_elements) == 1
        assert scan_segments(spec, 0, spec.segment_elements + 1) == 2
        # Unaligned start straddles a boundary.
        assert scan_segments(spec, spec.segment_elements - 1, 2) == 2

    def test_warp_instruction_cost_monotonic(self):
        spec = GPUSpec()
        assert warp_instruction_cost(spec, 0) == 0.0
        assert warp_instruction_cost(spec, 1) < warp_instruction_cost(spec, 32)
        assert warp_instruction_cost(spec, 1, 0) < warp_instruction_cost(spec, 1, 3)

    def test_dependent_chain_cost_linear(self):
        spec = GPUSpec()
        assert dependent_chain_cost(spec, 0) == 0.0
        assert dependent_chain_cost(spec, 10) == pytest.approx(
            10 * (spec.mem_latency_cycles + spec.issue_cycles)
        )

    def test_tracker_coalesces_across_lanes(self):
        """32 lanes reading the same block cost one set of segments."""
        spec = GPUSpec()
        shared, scattered = WarpMemoryTracker(spec), WarpMemoryTracker(spec)
        for lane in range(32):
            shared.contiguous(0, region=1, start=0, length=16)
            scattered.contiguous(0, region=1, start=lane * 1000, length=16)
        p_shared, p_scattered = WarpProfile(), WarpProfile()
        cost_shared = shared.commit(p_shared)
        cost_scattered = scattered.commit(p_scattered)
        assert cost_shared < cost_scattered
        assert p_shared.mem_segments < p_scattered.mem_segments

    def test_tracker_region_penalty(self):
        spec = GPUSpec()
        one_region, many_regions = WarpMemoryTracker(spec), WarpMemoryTracker(spec)
        for lane in range(8):
            one_region.touch(2, region=0, position=lane * 64)
            many_regions.touch(2, region=lane, position=lane * 64)
        c1 = one_region.commit(WarpProfile())
        c2 = many_regions.commit(WarpProfile())
        assert c2 - c1 == pytest.approx(7 * spec.region_miss_cycles)

    def test_tracker_resets_after_commit(self):
        tracker = WarpMemoryTracker(GPUSpec())
        tracker.contiguous(0, 0, 0, 100)
        tracker.commit(WarpProfile())
        assert tracker.pending_segments == 0
        assert tracker.commit(WarpProfile()) == 0.0


class TestProfiler:
    def test_lockstep_charges_slowest_lane(self):
        p = WarpProfile()
        p.charge_lockstep([10.0, 4.0, 0.0])
        assert p.compute_cycles == 10.0

    def test_charge_idle_wait(self):
        p = WarpProfile()
        p.charge_idle_wait(100.0, busy=24, total=32)
        assert p.stall_wait == pytest.approx(800.0)
        p.charge_idle_wait(100.0, busy=32, total=32)
        assert p.stall_wait == pytest.approx(800.0)

    def test_warp_efficiency(self):
        p = WarpProfile()
        p.note_lanes(busy=16, total=32)
        p.note_lanes(busy=32, total=32)
        assert p.warp_efficiency == pytest.approx(0.75)

    def test_merge_accumulates(self):
        a, b = WarpProfile(), WarpProfile()
        a.charge_compute(5)
        b.charge_compute(7)
        b.charge_memory(11, 2, 1)
        a.merge(b)
        assert a.compute_cycles == 12
        assert a.mem_cycles == 11 and a.stall_long == 11
        assert a.mem_segments == 2 and a.region_misses == 1

    def test_kernel_profile_aggregation(self):
        kernel = KernelProfile()
        w = WarpProfile()
        w.charge_compute(100)
        kernel.add_warp(w, samples=32, valid=4)
        assert kernel.n_warps == 1
        assert kernel.valid_ratio == pytest.approx(4 / 32)
        assert kernel.total_cycles == 100


class TestDeviceModel:
    def test_small_launch_bounded_by_longest_warp(self):
        spec = GPUSpec()
        device = DeviceModel(spec)
        kernel = KernelProfile()
        w = WarpProfile()
        w.charge_compute(1000.0)
        kernel.add_warp(w, samples=32, valid=0)
        ms = device.kernel_ms(kernel, longest_warp_cycles=1000.0)
        assert ms >= spec.launch_overhead_ms + spec.cycles_to_ms(1000.0)

    def test_saturated_launch_divides_by_residency(self):
        spec = GPUSpec()
        device = DeviceModel(spec)
        kernel = KernelProfile()
        for _ in range(spec.resident_warps * 2):
            w = WarpProfile()
            w.charge_compute(1000.0)
            kernel.add_warp(w, samples=32, valid=0)
        ms = device.kernel_ms(kernel)
        expected = spec.launch_overhead_ms + spec.cycles_to_ms(
            kernel.total_cycles / spec.resident_warps
        )
        assert ms == pytest.approx(expected)

    def test_empty_kernel_costs_launch_only(self):
        device = DeviceModel()
        assert device.kernel_ms(KernelProfile()) == device.spec.launch_overhead_ms

    def test_scale_to_samples(self):
        spec = GPUSpec()
        device = DeviceModel(spec)
        scaled = device.scale_to_samples(
            spec.launch_overhead_ms + 1.0, measured_samples=100, target_samples=1000
        )
        assert scaled == pytest.approx(spec.launch_overhead_ms + 10.0)
        with pytest.raises(ConfigError):
            device.scale_to_samples(1.0, 0, 10)


class TestSpecValidation:
    def test_gpu_spec_rejects_bad_warp_size(self):
        with pytest.raises(ConfigError):
            GPUSpec(warp_size=33)

    def test_gpu_spec_rejects_bad_clock(self):
        with pytest.raises(ConfigError):
            GPUSpec(clock_ghz=0)

    def test_cpu_spec_rejects_bad_threads(self):
        with pytest.raises(ConfigError):
            CPUSpec(threads=0)

    def test_cpu_thread_clamping(self):
        spec = CPUSpec(threads=12)
        # Requesting more workers than cores clamps to the core count.
        assert spec.cycles_to_ms(1200, threads=50) == spec.cycles_to_ms(1200, 12)
        assert spec.cycles_to_ms(1200, threads=1) > spec.cycles_to_ms(1200, 12)

    def test_resident_warps(self):
        spec = GPUSpec(sm_count=10, resident_warps_per_sm=4)
        assert spec.resident_warps == 40
