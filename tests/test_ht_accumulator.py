"""Tests for the Horvitz-Thompson accumulator (streaming moments + merge)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.estimators.ht import HTAccumulator


class TestBasics:
    def test_empty(self):
        acc = HTAccumulator()
        assert acc.estimate == 0.0
        assert acc.variance == 0.0
        assert acc.valid_ratio == 0.0

    def test_paper_example2(self):
        """Example 2: one invalid + one valid sample with weight 24 -> 12."""
        acc = HTAccumulator()
        acc.add(0.0)
        acc.add(24.0)
        assert acc.estimate == pytest.approx(12.0)
        assert acc.n == 2 and acc.n_valid == 1
        assert acc.valid_ratio == pytest.approx(0.5)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            HTAccumulator().add(-1.0)

    def test_add_invalid_bulk(self):
        acc = HTAccumulator()
        acc.add(10.0)
        acc.add_invalid(9)
        assert acc.n == 10
        assert acc.estimate == pytest.approx(1.0)

    def test_variance_matches_numpy(self):
        values = [0.0, 3.0, 7.5, 0.0, 12.0, 1.0]
        acc = HTAccumulator()
        for v in values:
            acc.add(v)
        assert acc.estimate == pytest.approx(np.mean(values))
        assert acc.variance == pytest.approx(np.var(values, ddof=1))
        assert acc.std_error == pytest.approx(
            math.sqrt(np.var(values, ddof=1) / len(values))
        )


class TestMerge:
    @given(
        st.lists(st.floats(min_value=0, max_value=1e6), min_size=0, max_size=30),
        st.lists(st.floats(min_value=0, max_value=1e6), min_size=0, max_size=30),
    )
    @settings(max_examples=80, deadline=None)
    def test_merge_equals_sequential(self, left, right):
        """Parallel reduction must agree with a single-stream accumulator."""
        a, b, c = HTAccumulator(), HTAccumulator(), HTAccumulator()
        for v in left:
            a.add(v)
            c.add(v)
        for v in right:
            b.add(v)
            c.add(v)
        a.merge(b)
        assert a.n == c.n and a.n_valid == c.n_valid
        if c.n:
            assert a.estimate == pytest.approx(c.estimate, rel=1e-9, abs=1e-9)
            assert a.variance == pytest.approx(c.variance, rel=1e-6, abs=1e-6)

    def test_merge_into_empty(self):
        a, b = HTAccumulator(), HTAccumulator()
        b.add(5.0)
        a.merge(b)
        assert a.estimate == 5.0 and a.n == 1

    def test_merge_empty_is_noop(self):
        a = HTAccumulator()
        a.add(3.0)
        a.merge(HTAccumulator())
        assert a.n == 1 and a.estimate == 3.0


class TestScaledCopy:
    def test_scaling(self):
        acc = HTAccumulator()
        acc.add(2.0)
        acc.add(4.0)
        scaled = acc.scaled_copy(10.0)
        assert scaled.estimate == pytest.approx(30.0)
        assert scaled.variance == pytest.approx(acc.variance * 100.0)
        assert scaled.n == acc.n
