"""Tests for adaptive sample budgets (repro/serve/controller.py)."""

import math

import pytest

from repro.errors import ServiceError
from repro.estimators.ht import HTAccumulator
from repro.graph.datasets import load_dataset
from repro.query.extract import extract_query
from repro.serve.controller import (
    REASON_BUDGET,
    REASON_CONVERGED,
    REASON_DEADLINE,
    REASON_EMPTY,
    AdaptiveBudgetController,
    BudgetPolicy,
    relative_ci,
)
from repro.serve.request import EstimateRequest

POLICY = BudgetPolicy(min_round_samples=100, max_round_samples=1000)


@pytest.fixture(scope="module")
def workload():
    graph = load_dataset("yeast")
    return graph, extract_query(graph, 4, rng=0)


def make_request(workload, **kwargs):
    graph, query = workload
    return EstimateRequest(graph=graph, query=query, **kwargs)


def make_controller(workload, policy=POLICY, **kwargs):
    return AdaptiveBudgetController(make_request(workload, **kwargs), policy)


def acc_with(values):
    acc = HTAccumulator()
    for v in values:
        acc.add(v)
    return acc


class TestBudgetPolicy:
    def test_validation(self):
        with pytest.raises(ServiceError):
            BudgetPolicy(min_round_samples=0)
        with pytest.raises(ServiceError):
            BudgetPolicy(min_round_samples=100, max_round_samples=50)
        with pytest.raises(ServiceError):
            BudgetPolicy(growth=0.5)
        with pytest.raises(ServiceError):
            BudgetPolicy(z=0)


class TestRelativeCI:
    def test_undefined_without_signal(self):
        assert relative_ci(acc_with([])) == math.inf
        assert relative_ci(acc_with([5.0])) == math.inf  # n < 2
        assert relative_ci(acc_with([0.0, 0.0])) == math.inf  # estimate 0

    def test_zero_for_constant_values(self):
        assert relative_ci(acc_with([7.0] * 10)) == 0.0

    def test_matches_formula(self):
        acc = acc_with([100.0, 200.0, 150.0, 50.0])
        expected = 1.96 * acc.std_error / acc.estimate
        assert relative_ci(acc) == pytest.approx(expected)

    def test_shrinks_with_samples(self):
        few = acc_with([100.0, 200.0] * 2)
        many = acc_with([100.0, 200.0] * 50)
        assert relative_ci(many) < relative_ci(few)


class TestRoundSizing:
    def test_first_round_is_min(self, workload):
        ctl = make_controller(workload)
        assert ctl.next_round_samples(0.0) == POLICY.min_round_samples

    def test_first_round_runs_even_past_deadline(self, workload):
        """Degraded responses are best-effort, never empty: round 1 runs
        regardless of the deadline."""
        ctl = make_controller(workload, deadline_ms=1.0)
        assert ctl.next_round_samples(elapsed_ms=99.0) > 0

    def test_geometric_growth_without_signal(self, workload):
        ctl = make_controller(workload)
        n1 = ctl.next_round_samples(0.0)
        ctl.observe(acc_with([0.0] * n1), n1, round_ms=0.1)  # rel_ci still inf
        assert ctl.next_round_samples(0.0) == n1 * 2  # growth=2.0
        ctl.observe(acc_with([0.0] * (n1 * 3)), n1 * 2, round_ms=0.1)
        assert ctl.next_round_samples(0.0) == n1 * 4

    def test_ci_gap_sizing(self, workload):
        """With a CI signal the next round requests the 1/√n gap."""
        ctl = make_controller(workload, target_rel_ci=0.05)
        n1 = ctl.next_round_samples(0.0)
        acc = acc_with([100.0, 200.0] * (n1 // 2))
        ctl.observe(acc, n1, round_ms=0.1)
        rel = relative_ci(acc)
        needed = math.ceil(n1 * (rel / 0.05) ** 2) - n1
        want = max(POLICY.min_round_samples, min(POLICY.max_round_samples, needed))
        assert ctl.next_round_samples(0.0) == want

    def test_round_ceiling_bounds_fairness(self, workload):
        """A far-from-converged request still yields the device after
        max_round_samples."""
        ctl = make_controller(workload, target_rel_ci=1e-6)
        n1 = ctl.next_round_samples(0.0)
        ctl.observe(acc_with([100.0, 200.0] * (n1 // 2)), n1, round_ms=0.1)
        assert ctl.next_round_samples(0.0) == POLICY.max_round_samples

    def test_round_capped_by_remaining_budget(self, workload):
        ctl = make_controller(workload, max_samples=150)
        n1 = ctl.next_round_samples(0.0)
        assert n1 == 100
        ctl.observe(acc_with([0.0] * n1), n1, round_ms=0.1)
        assert ctl.next_round_samples(0.0) == 50  # budget remnant, not 200


class TestStopping:
    def test_converged(self, workload):
        ctl = make_controller(workload, target_rel_ci=0.5)
        n1 = ctl.next_round_samples(0.0)
        ctl.observe(acc_with([100.0] * n1), n1, round_ms=0.1)  # rel_ci = 0
        assert ctl.next_round_samples(0.0) == 0
        assert ctl.stop_reason == REASON_CONVERGED
        assert ctl.finished and ctl.converged and not ctl.degraded

    def test_budget_backstop(self, workload):
        """Zero-estimate requests (rel_ci forever inf) stop at max_samples
        and report degraded."""
        ctl = make_controller(workload, max_samples=100)
        n1 = ctl.next_round_samples(0.0)
        ctl.observe(acc_with([0.0] * n1), n1, round_ms=0.1)
        assert ctl.next_round_samples(0.0) == 0
        assert ctl.stop_reason == REASON_BUDGET
        assert ctl.degraded

    def test_deadline_elapsed(self, workload):
        ctl = make_controller(workload, deadline_ms=1.0, target_rel_ci=0.01)
        n1 = ctl.next_round_samples(0.0)
        ctl.observe(acc_with([100.0, 200.0] * (n1 // 2)), n1, round_ms=0.5)
        assert ctl.next_round_samples(elapsed_ms=1.5) == 0
        assert ctl.stop_reason == REASON_DEADLINE
        assert ctl.degraded

    def test_deadline_no_room_for_a_sample(self, workload):
        """Deadline not yet hit, but the observed ms/sample says not even
        one more sample fits."""
        ctl = make_controller(workload, deadline_ms=10.0, target_rel_ci=0.01)
        n1 = ctl.next_round_samples(0.0)
        ctl.observe(acc_with([100.0, 200.0] * (n1 // 2)), n1, round_ms=100.0)
        # ms_per_sample = 1.0; remaining 0.5 ms fits 0 samples.
        assert ctl.next_round_samples(elapsed_ms=9.5) == 0
        assert ctl.stop_reason == REASON_DEADLINE

    def test_deadline_shrinks_round_to_fit(self, workload):
        ctl = make_controller(workload, deadline_ms=1000.0)
        n1 = ctl.next_round_samples(0.0)
        ctl.observe(acc_with([0.0] * n1), n1, round_ms=100.0)  # 1 ms/sample
        # Geometric growth wants 200; only ~120 ms remain -> 120 samples.
        assert ctl.next_round_samples(elapsed_ms=880.0) == 120

    def test_finish_empty(self, workload):
        ctl = make_controller(workload)
        ctl.finish_empty()
        assert ctl.stop_reason == REASON_EMPTY
        assert not ctl.degraded and ctl.rel_ci == 0.0
        assert ctl.next_round_samples(0.0) == 0

    def test_stop_reason_before_stop_raises(self, workload):
        with pytest.raises(ServiceError):
            make_controller(workload).stop_reason

    def test_observe_rejects_empty_round(self, workload):
        with pytest.raises(ServiceError):
            make_controller(workload).observe(acc_with([1.0]), 0, 0.1)


class TestEWMA:
    def test_ms_per_sample_blends(self, workload):
        ctl = make_controller(workload, deadline_ms=1e9)
        n1 = ctl.next_round_samples(0.0)  # 100
        ctl.observe(acc_with([0.0] * n1), n1, round_ms=100.0)  # 1.0 ms/sample
        assert ctl._ms_per_sample == pytest.approx(1.0)
        n2 = ctl.next_round_samples(0.0)  # 200
        ctl.observe(acc_with([0.0] * 300), n2, round_ms=600.0)  # 3.0 ms/sample
        assert ctl._ms_per_sample == pytest.approx(2.0)  # 0.5/0.5 blend
