"""Cardinality estimation for a query optimizer — the Table 2 scenario.

A query optimizer needs fast, reasonably accurate cardinality estimates for
candidate join orders.  This example runs the paper's six compared methods
(CPU-WJ/AL, GPU-WJ/AL, gSWORD-WJ/AL) on one workload and prints the
latency/accuracy trade-off each offers, extrapolated to the paper's
10^6-sample budget.

Run:  python examples/cardinality_estimation.py [dataset] [query_size]
"""

import sys

from repro.bench.harness import METHOD_NAMES, run_method
from repro.bench.reporting import render_table
from repro.bench.workloads import build_workload
from repro.metrics.qerror import q_error


def main(dataset: str = "dblp", k: int = 8) -> None:
    workload = build_workload(dataset, k, "dense", 0)
    print(f"dataset:  {workload.graph}")
    print(f"query:    {workload.query}")

    truth = workload.ground_truth()
    label = f"{truth.count:,}" + ("" if truth.complete else " (lower bound)")
    print(f"truth:    {label}\n")

    rows = []
    for method in METHOD_NAMES:
        result = run_method(workload, method, sim_samples=4096)
        q = q_error(truth.count, result.estimate) if truth.complete else None
        rows.append([
            method,
            f"{result.simulated_ms:.3f}",
            f"{result.estimate:,.0f}",
            f"{q:.2f}" if q is not None else "n/a",
            f"{result.valid_ratio:.2%}",
        ])
    print(render_table(
        ["Method", "ms @ 1e6 samples", "estimate", "q-error", "valid ratio"],
        rows,
        title="Estimator trade-offs (simulated hardware timings)",
    ))
    print(
        "\nReading: gSWORD rows should dominate the GPU baselines, which "
        "dominate the CPU rows,\nat comparable accuracy — the paper's "
        "Table 2 in miniature."
    )


if __name__ == "__main__":
    dataset = sys.argv[1] if len(sys.argv) > 1 else "dblp"
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    main(dataset, k)
