"""Writing a custom RW estimator against the RSV abstraction (§3.1).

The paper pitches gSWORD as a *framework*: "users can create their custom
RW estimators by adjusting the number of elements to be refined,
effectively balancing the trade-off between efficiency and accuracy."
This example implements such an estimator — **PartialAlley** — that refines
only the first ``budget`` candidates of each step (cheap, Alley-flavoured)
and validates like WanderJoin for anything it did not refine.  It then runs
it through the unmodified engine next to WJ and Alley.

Run:  python examples/custom_estimator.py
"""

from typing import Sequence, Tuple

import numpy as np

from repro.bench.workloads import build_workload
from repro.core.config import EngineConfig
from repro.core.engine import GSWORDEngine
from repro.estimators.alley import AlleyEstimator
from repro.estimators.base import RSVEstimator, SampleState, StepContext
from repro.estimators.wanderjoin import WanderJoinEstimator
from repro.metrics.qerror import q_error


class PartialAlleyEstimator(RSVEstimator):
    """Refine at most ``budget`` candidates per step; validate the rest.

    ``budget = 0`` degenerates to WanderJoin; ``budget = inf`` to Alley.
    """

    has_refine_stage = True

    def __init__(self, budget: int = 8) -> None:
        self.budget = budget
        self.name = f"PA{budget}"
        self._alley = AlleyEstimator()
        self._wj = WanderJoinEstimator()

    def refine(
        self,
        ctx: StepContext,
        state: SampleState,
        cand: np.ndarray,
        others: Sequence[int],
    ) -> Tuple[np.ndarray, int]:
        if len(cand) <= self.budget:
            return self._alley.refine(ctx, state, cand, others)
        # Refine a prefix only: survivors of the prefix plus the untouched
        # tail keep the refined set non-empty whenever cand is.
        head, probes = self._alley.refine(
            ctx, state, cand[: self.budget], others
        )
        merged = np.concatenate([head, cand[self.budget :]])
        return np.sort(merged), probes

    def validate(
        self,
        ctx: StepContext,
        state: SampleState,
        v: int,
        prob_factor: float,
        others: Sequence[int],
    ) -> Tuple[bool, int]:
        # Unrefined candidates may violate backward edges: do the full
        # WanderJoin validation (refined ones pass it trivially).
        return self._wj.validate(ctx, state, v, prob_factor, others)


def main() -> None:
    workload = build_workload("dblp", 8, "dense", 0)
    truth = workload.ground_truth()
    print(f"workload: {workload.query} on {workload.graph}")
    print(f"truth:    {truth.count:,}\n")

    print(f"{'estimator':<10}{'estimate':>14}{'q-error':>10}"
          f"{'valid':>8}{'sim ms':>10}")
    for estimator in (
        WanderJoinEstimator(),
        PartialAlleyEstimator(budget=4),
        PartialAlleyEstimator(budget=16),
        AlleyEstimator(),
    ):
        engine = GSWORDEngine(estimator, EngineConfig.gsword())
        result = engine.run(workload.cg, workload.order, 16384, rng=11)
        print(
            f"{estimator.name:<10}{result.estimate:>14,.1f}"
            f"{q_error(truth.count, result.estimate):>10.2f}"
            f"{result.n_valid:>8}{result.simulated_ms():>10.4f}"
        )
    print(
        "\nThe refinement budget interpolates between WanderJoin (cheap, "
        "noisy) and Alley\n(expensive, precise) without touching the engine "
        "— the RSV framework at work."
    )


if __name__ == "__main__":
    main()
