"""Serving demo: 32+ concurrent mixed queries through EstimationService.

Shows the three serving-layer properties end to end:

(a) **plan-cache reuse** — the 36-request stream cycles over 6 distinct
    queries, so repeats hit the LRU plan cache and skip candidate-graph
    construction + PCIe transfer, with measurably lower latency;
(b) **dynamic batching** — rounds from many queries fuse into co-resident
    device batches sharing ``GPUSpec.resident_warps``; aggregate
    samples/sec beats running the same requests one-per-batch on the same
    simulated device (emergent from the occupancy model, nothing is
    hard-coded);
(c) **deadline degradation** — requests with a tight simulated deadline
    return a best-effort estimate flagged ``degraded=True`` instead of
    failing.

Run:  python examples/serving.py
"""

from repro.bench.serving import build_request_pool, request_stream
from repro.serve import EstimationService, ServiceConfig

N_REQUESTS = 36
N_DISTINCT = 6


def run_wave(service: EstimationService, requests):
    responses = service.estimate_many(requests)
    snap = service.metrics_snapshot()
    return responses, snap


def main() -> None:
    pool = build_request_pool(distinct=N_DISTINCT, deadline_ms=0.12)
    requests = request_stream(pool, N_REQUESTS)
    print(f"submitting {N_REQUESTS} concurrent requests "
          f"({N_DISTINCT} distinct queries, mixed sizes/datasets)\n")

    # Batched serving with the plan cache (the real configuration).
    batched, batched_snap = run_wave(
        EstimationService(), request_stream(pool, N_REQUESTS)
    )
    # The same requests one-per-batch without a cache: the serial baseline.
    serial, serial_snap = run_wave(
        EstimationService(ServiceConfig(cache_bytes=0, max_batch_requests=1)),
        requests,
    )

    # (a) cache reuse -> lower per-request latency on repeats.
    misses = [r.latency_ms for r in batched if not r.cache_hit]
    hits = [r.latency_ms for r in batched if r.cache_hit]
    hit_rate = batched_snap["cache"]["hit_rate"]
    print(f"(a) cache hit rate: {hit_rate:.0%}  "
          f"({len(hits)} hits / {len(misses)} misses)")
    print(f"    mean latency on miss: {sum(misses) / len(misses):.3f} sim ms")
    print(f"    mean latency on hit:  {sum(hits) / len(hits):.3f} sim ms")
    assert hit_rate > 0 and hits and misses
    assert sum(hits) / len(hits) < sum(misses) / len(misses)

    # (b) dynamic batching -> higher aggregate device throughput.
    print(f"\n(b) aggregate samples/sec, same simulated device:")
    print(f"    serial (1 request/batch): "
          f"{serial_snap['samples_per_second']:,.0f}")
    print(f"    batched (co-resident):    "
          f"{batched_snap['samples_per_second']:,.0f}  "
          f"(mean batch size {batched_snap['mean_batch_size']:.1f})")
    assert batched_snap["samples_per_second"] > serial_snap["samples_per_second"]

    # (c) deadline-bounded requests degrade instead of failing.
    degraded = [r for r in batched if r.degraded]
    print(f"\n(c) degraded (deadline/budget-bounded) responses: "
          f"{len(degraded)}/{len(batched)} — best-effort estimates, no errors")
    for r in degraded[:3]:
        print(f"    {r.request_id}: estimate={r.estimate:,.1f} "
              f"rel_ci=±{min(r.rel_ci, 9.99):.2f} stop={r.stop_reason} "
              f"latency={r.latency_ms:.3f} sim ms")
    assert degraded and all(r.n_samples > 0 for r in degraded)

    lat = batched_snap["latency_ms"]
    print(f"\nlatency (sim ms): p50={lat['p50']:.3f} p95={lat['p95']:.3f} "
          f"p99={lat['p99']:.3f}")
    print("all serving properties verified.")


if __name__ == "__main__":
    main()
