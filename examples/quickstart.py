"""Quickstart: estimate a subgraph count with gSWORD in ~30 lines.

Loads the Yeast dataset analog, extracts an 8-vertex query from it, builds
the candidate graph, runs the full gSWORD engine (sample inheritance + warp
streaming on the simulated GPU), and compares the estimate against the
exact count.

Run:  python examples/quickstart.py
"""

from repro import (
    AlleyEstimator,
    EngineConfig,
    GSWORDEngine,
    build_candidate_graph,
    count_embeddings,
    extract_query,
    load_dataset,
    q_error,
    quicksi_order,
)


def main() -> None:
    # 1. A data graph: the scaled analog of the paper's Yeast dataset.
    graph = load_dataset("yeast")
    print(f"data graph: {graph}")

    # 2. A query: extracted from the graph by a random walk (so it is
    #    guaranteed to have at least one embedding).
    query = extract_query(graph, k=8, rng=27, query_type="dense")
    print(f"query:      {query}")

    # 3. The candidate graph (triple-CSR, Fig. 4 of the paper) and a
    #    QuickSI-style matching order.
    cg = build_candidate_graph(graph, query)
    order = quicksi_order(query, graph)
    print(f"candidates: {[len(c) for c in cg.global_candidates]}")

    # 4. Exact ground truth by backtracking enumeration (feasible here).
    truth = count_embeddings(cg, order)
    print(f"exact count: {truth.count}  "
          f"({truth.nodes_visited} search nodes, {truth.elapsed_ms:.1f} ms)")

    # 5. gSWORD: Alley sampling on the simulated GPU with both
    #    optimizations enabled (EngineConfig.gsword() == the paper's O2).
    engine = GSWORDEngine(AlleyEstimator(), EngineConfig.gsword())
    result = engine.run(cg, order, n_samples=20_000, rng=42)
    print(f"\ngSWORD-AL estimate: {result.estimate:,.1f}")
    print(f"samples collected:  {result.n_samples} "
          f"({result.n_root_samples} roots, {result.n_valid} valid instances)")
    print(f"simulated GPU time: {result.simulated_ms():.3f} ms "
          f"({result.samples_per_second():,.0f} samples/s)")
    print(f"q-error:            {q_error(truth.count, result.estimate):.3f}")


if __name__ == "__main__":
    main()
