"""Rescuing hopeless queries with trawling + CPU-GPU co-processing (§5).

On graphs like WordNet, 16-vertex queries have large true counts but a
valid-sample probability so low that RW estimators return (near-)zero —
the underestimation pathology of the paper's Figures 13-15.  This example
shows pure sampling collapsing and the co-processing pipeline recovering
orders of magnitude of accuracy by enumerating trawled sample prefixes on
the CPU while the GPU keeps sampling.

Run:  python examples/hard_queries_trawling.py
"""

from repro.bench.workloads import build_workload
from repro.core.pipeline import CoProcessingPipeline, PipelineConfig
from repro.core.trawling import trawl_depth_distribution
from repro.estimators.alley import AlleyEstimator
from repro.estimators.cpu_runner import CPUSamplingRunner
from repro.metrics.qerror import q_error


def main() -> None:
    workload = build_workload("wordnet", 16, "dense", 0)
    truth = workload.ground_truth()
    print(f"dataset: {workload.graph}")
    print(f"query:   {workload.query}")
    print(f"truth:   {truth.count:,} embeddings\n")

    # --- Pure sampling: millions of samples, still (nearly) nothing. ----
    sampling = CPUSamplingRunner(AlleyEstimator()).run(
        workload.cg, workload.order, 8000, rng=2
    )
    print("pure Alley sampling (8000 samples):")
    print(f"  estimate     {sampling.estimate:,.1f}")
    print(f"  valid        {sampling.n_valid} of {sampling.n_samples}")
    print(f"  q-error      {q_error(truth.count, sampling.estimate):,.1f}\n")

    # --- Trawling depth distribution (Alg. 4's Select). -----------------
    dist = trawl_depth_distribution(workload.query.n_vertices)
    pretty = ", ".join(f"d={d}: {p:.3f}" for d, p in sorted(dist.items())[:4])
    print(f"trawl depth distribution (geometric): {pretty}, ...\n")

    # --- Co-processing: GPU sampling + CPU trawling, overlapped. --------
    pipeline = CoProcessingPipeline(
        AlleyEstimator(),
        PipelineConfig(
            n_batches=6,
            trawls_per_batch=256,
            # Let each virtual worker's window fit the heavy hub-prefix
            # enumerations that carry the count mass on this graph.
            enum_nodes_per_ms=2.5e6,
        ),
    )
    result = pipeline.run(workload.cg, workload.order, 8192, rng=1)
    print("CPU-GPU co-processing (6 batches, 256 trawls each):")
    print(f"  sampling estimate  {result.sampling_estimate:,.1f}")
    print(f"  trawling estimate  {result.trawling_estimate:,.1f} "
          f"({result.n_enumerated} enumerations completed)")
    print(f"  final estimate     {result.final_estimate:,.1f}")
    print(f"  q-error            {q_error(truth.count, result.final_estimate):,.1f}")
    print(f"  GPU time           {result.total_gpu_ms:.3f} ms (simulated)")
    print(f"  CPU time           {result.total_cpu_ms:.3f} ms (hidden behind GPU)")
    print(f"  pipeline total     {result.total_pipeline_ms:.3f} ms — "
          "co-processing is (nearly) free")


if __name__ == "__main__":
    main()
